"""Time-series container used throughout the planner.

A thin, explicit wrapper over two aligned numpy arrays (window indices
and values) with the resampling / alignment / percentile operations the
methodology needs.  Immutable by convention: operations return new
series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, Tuple

import numpy as np

from repro.stats.descriptive import percentile_profile


@dataclass(frozen=True)
class TimeSeries:
    """Values indexed by simulation window."""

    windows: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        windows = np.asarray(self.windows, dtype=int)
        values = np.asarray(self.values, dtype=float)
        if windows.ndim != 1 or values.ndim != 1:
            raise ValueError("windows and values must be one-dimensional")
        if windows.size != values.size:
            raise ValueError("windows and values must have equal length")
        # Already-sorted inputs (every producer inside the store) skip
        # the argsort entirely; only genuinely unsorted input pays.
        if windows.size > 1 and np.any(np.diff(windows) < 0):
            order = np.argsort(windows, kind="stable")
            windows = windows[order]
            values = values[order]
        object.__setattr__(self, "windows", windows)
        object.__setattr__(self, "values", values)

    @classmethod
    def from_sorted(cls, windows: np.ndarray, values: np.ndarray) -> "TimeSeries":
        """Wrap already-sorted, already-typed arrays without validation.

        The metric store's hot path: its grouped outputs are sorted by
        construction, so the ``__post_init__`` checks are pure overhead.
        Callers must guarantee aligned 1-D arrays with non-decreasing
        windows.
        """
        series = cls.__new__(cls)
        object.__setattr__(series, "windows", np.asarray(windows, dtype=int))
        object.__setattr__(series, "values", np.asarray(values, dtype=float))
        return series

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, float]]) -> "TimeSeries":
        pairs = list(pairs)
        if not pairs:
            return cls(windows=np.array([], dtype=int), values=np.array([], dtype=float))
        windows, values = zip(*pairs)
        return cls(windows=np.asarray(windows, dtype=int), values=np.asarray(values, dtype=float))

    def __len__(self) -> int:
        return int(self.windows.size)

    @property
    def is_empty(self) -> bool:
        return self.windows.size == 0

    def slice_windows(self, start: int, stop: int) -> "TimeSeries":
        """Restrict to windows in [start, stop)."""
        mask = (self.windows >= start) & (self.windows < stop)
        return TimeSeries(self.windows[mask], self.values[mask])

    def where(self, predicate: Callable[[np.ndarray], np.ndarray]) -> "TimeSeries":
        """Filter by a vectorised predicate over values."""
        mask = predicate(self.values)
        return TimeSeries(self.windows[mask], self.values[mask])

    def mean(self) -> float:
        if self.is_empty:
            raise ValueError("mean of empty series")
        return float(self.values.mean())

    def percentile(self, p: float) -> float:
        if self.is_empty:
            raise ValueError("percentile of empty series")
        return float(np.percentile(self.values, p))

    def percentiles(self, ps: Sequence[float]) -> np.ndarray:
        if self.is_empty:
            raise ValueError("percentiles of empty series")
        return percentile_profile(self.values, ps)

    def align_with(self, other: "TimeSeries") -> Tuple[np.ndarray, np.ndarray]:
        """Return values from both series on their common windows.

        The methodology constantly pairs a workload series with a
        resource or QoS series sampled on the same windows; alignment by
        window index is the join that makes those scatter plots valid.
        """
        common, idx_self, idx_other = np.intersect1d(
            self.windows, other.windows, return_indices=True
        )
        del common
        return self.values[idx_self], other.values[idx_other]

    def resample(self, factor: int, reducer: str = "mean") -> "TimeSeries":
        """Aggregate consecutive groups of ``factor`` windows.

        ``reducer`` is one of ``"mean"``, ``"max"``, ``"min"``, ``"sum"``.
        Windows are grouped by ``window // factor``; the resampled series
        is indexed by group number.
        """
        if factor < 1:
            raise ValueError("factor must be >= 1")
        if self.is_empty:
            return self
        reducers = {
            "mean": np.mean,
            "max": np.max,
            "min": np.min,
            "sum": np.sum,
        }
        if reducer not in reducers:
            raise ValueError(f"unknown reducer {reducer!r}")
        fn = reducers[reducer]
        groups = self.windows // factor
        unique_groups = np.unique(groups)
        out_values = np.array(
            [fn(self.values[groups == g]) for g in unique_groups], dtype=float
        )
        return TimeSeries(unique_groups, out_values)

    def diff_fraction(self) -> "TimeSeries":
        """Window-over-window fractional change; used for surge detection."""
        if len(self) < 2:
            return TimeSeries(np.array([], dtype=int), np.array([], dtype=float))
        prev = self.values[:-1]
        nxt = self.values[1:]
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(prev != 0, (nxt - prev) / prev, 0.0)
        return TimeSeries(self.windows[1:], frac)
