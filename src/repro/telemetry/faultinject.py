"""Deterministic fault injection for the tcp shard transport.

The fault-tolerance claims of the replicated tcp backend — failover on
the PR 5 timeout/EOF paths, bounded errors instead of hangs, rejoin
after restart — are only worth anything if they are *provoked* under
test.  Real networks misbehave in ways a unit test cannot wait for, so
this module wraps a :class:`~repro.telemetry.transport.TcpTransport`
in a :class:`FaultyTransport` that misbehaves on cue: after a chosen
number of outgoing frames it can blackhole sends, wedge like a
hung-but-alive peer, delay every operation, corrupt a frame header, or
kill the socket outright.

Two entry points:

* Tests wrap a transport directly (``FaultyTransport(inner, "hang",
  ...)``) or call :func:`inject_store` on a constructed
  :class:`~repro.telemetry.sharding.ShardedMetricStore`.
* Operators pass ``repro simulate --inject-fault MODE[:AFTER]`` to
  watch a failure land on shard 0 mid-run — with ``--replica-addrs``
  the run completes via failover, without it the run fails with the
  named per-shard error.  A debugging aid, never on by default.

Every mode resolves to one of the error paths the client stack already
handles — nothing here adds new failure semantics, it only makes the
existing ones reachable on demand:

``delay``
    Sleep ``delay_s`` before every send and recv.  Everything still
    works (latency injection); results stay bit-identical.
``drop``
    After ``after_frames`` outgoing frames, silently discard every
    further send.  The peer never sees the query frame, so the reply
    wait runs into the socket's ``io_timeout`` → ``TimeoutError`` →
    the per-shard "I/O timed out" error.
``hang``
    After ``after_frames`` frames, every send blocks without progress
    until the ``io_timeout`` bound elapses, then raises
    ``TimeoutError`` — exactly what a wedged ``sendall`` against a
    peer that stopped reading looks like.  (With no bound configured
    it blocks until the transport is closed, which is also what the
    real thing does.)
``corrupt``
    After ``after_frames`` frames, the next frame goes out with an
    unknown frame kind in its header.  The peer refuses it
    ("peer is not speaking the shard protocol") and drops the
    session; the client sees the connection die → "connection lost".
``kill``
    After ``after_frames`` frames, close the socket abruptly
    (the in-process stand-in for ``kill -9`` of the server);
    the triggering send fails → "connection lost".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.telemetry.transport import _HEADER, _KIND_SHIFT

#: Valid fault modes, in the order documented above.
MODES = ("delay", "drop", "hang", "corrupt", "kill")

#: A frame kind no protocol revision uses — what ``corrupt`` stamps
#: into the wire so the peer rejects the frame as garbage.
_BAD_FRAME_KIND = 0x7F

#: How often a hung send re-checks for close/timeout (seconds); bounds
#: how stale the deadline check can be, not the accuracy of the fault.
_POLL_INTERVAL = 0.05

#: Default extra latency of the ``delay`` mode (seconds).
DEFAULT_DELAY_S = 0.01


@dataclass
class FaultSpec:
    """One parsed fault: what to break, when, and on which shard."""

    mode: str
    after_frames: int = 0
    delay_s: float = DEFAULT_DELAY_S
    shard: int = 0


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI's ``MODE[:AFTER]`` syntax into a :class:`FaultSpec`.

    ``MODE`` is one of :data:`MODES`; ``AFTER`` (optional, default 0 =
    immediately) is how many outgoing frames pass unharmed first.
    Raises ``ValueError`` with a usage-style message on anything else.
    """
    head, _sep, tail = text.partition(":")
    mode = head.strip().lower()
    if mode not in MODES:
        raise ValueError(
            f"unknown fault mode {mode!r}; expected one of {', '.join(MODES)}"
        )
    after_frames = 0
    if tail:
        try:
            after_frames = int(tail)
        except ValueError as error:
            raise ValueError(
                f"bad fault spec {text!r}: AFTER must be an integer "
                f"frame count (MODE[:AFTER])"
            ) from error
        if after_frames < 0:
            raise ValueError(f"bad fault spec {text!r}: AFTER must be >= 0")
    return FaultSpec(mode=mode, after_frames=after_frames)


class FaultyTransport:
    """A transport wrapper that misbehaves on cue (see module docs).

    Duck-types the transport surface the client stack uses — ``send``,
    ``send_ingest``, ``recv``, ``close`` and the ``binary_frames``
    negotiation flag — so it can be swapped in front of any
    :class:`~repro.telemetry.transport.TcpTransport` (including one
    already owned by a live ``TcpShardClient``, which reads the
    attribute on every operation).  Frame counting covers both send
    flavours; the fault arms once ``after_frames`` frames have gone
    out.  ``close`` is safe at any time, including while a ``hang``
    send is blocking — it wakes the hung thread, which then raises
    ``ConnectionError`` exactly as a closed-under-send socket would.
    """

    def __init__(
        self,
        inner: Any,
        mode: str,
        after_frames: int = 0,
        delay_s: float = DEFAULT_DELAY_S,
        io_timeout: Optional[float] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(
                f"unknown fault mode {mode!r}; expected one of {MODES}"
            )
        if after_frames < 0:
            raise ValueError("after_frames must be >= 0")
        self._inner = inner
        self._mode = mode
        self._after_frames = after_frames
        self._delay_s = delay_s
        self._io_timeout = io_timeout
        self._frames_sent = 0
        self._corrupted = False
        self._closed = threading.Event()

    @property
    def binary_frames(self) -> bool:
        return self._inner.binary_frames

    @binary_frames.setter
    def binary_frames(self, value: bool) -> None:
        self._inner.binary_frames = value

    @property
    def frames_sent(self) -> int:
        """Outgoing frames counted so far (dropped ones included)."""
        return self._frames_sent

    @property
    def armed(self) -> bool:
        """Whether the fault has started firing."""
        return self._frames_sent >= self._after_frames

    def _hang_until_timeout(self) -> None:
        """Block like a wedged ``sendall``: wake on close or timeout."""
        deadline = (
            None
            if self._io_timeout is None
            else time.monotonic() + self._io_timeout
        )
        while not self._closed.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    "fault injection: peer made no progress"
                )
            self._closed.wait(_POLL_INTERVAL)
        raise ConnectionError("fault injection: transport closed while hung")

    def _before_send(self) -> bool:
        """Apply the armed fault; ``False`` means swallow this frame."""
        if self._mode == "delay":
            time.sleep(self._delay_s)
            return True
        if not self.armed:
            return True
        if self._mode == "drop":
            return False
        if self._mode == "hang":
            self._hang_until_timeout()
        if self._mode == "corrupt":
            if not self._corrupted:
                self._corrupted = True
                # One frame with a kind no peer accepts: 8 bytes of
                # header claiming an 8-byte payload of garbage.  The
                # peer answers by dropping the session.
                self._inner._sock.sendall(
                    _HEADER.pack((_BAD_FRAME_KIND << _KIND_SHIFT) | 8)
                    + b"<fault!>"
                )
            return False
        if self._mode == "kill":
            # Abrupt socket death; the real send below then fails the
            # way a killed peer's RST would.
            self._inner.close()
        return True

    def send(self, message: Any) -> None:
        if self._before_send():
            self._inner.send(message)
        self._frames_sent += 1

    def send_ingest(self, names: List[str], commands: List[tuple]) -> None:
        if self._before_send():
            self._inner.send_ingest(names, commands)
        self._frames_sent += 1

    def recv(self) -> Any:
        if self._mode == "delay":
            time.sleep(self._delay_s)
        return self._inner.recv()

    def close(self) -> None:
        self._closed.set()
        self._inner.close()


def inject_client(client: Any, spec: FaultSpec) -> FaultyTransport:
    """Wrap one shard client's transport per ``spec``; returns the wrap.

    For a :class:`~repro.telemetry.workers.ReplicatedShardClient` the
    fault lands on the *primary* member only — the replicas stay
    healthy, which is exactly the failover scenario worth provoking.
    Must run before ingest begins (the writer thread reads the
    transport attribute per frame, but swapping it mid-stream would
    interleave fault accounting with in-flight frames).
    """
    from repro.telemetry.workers import ReplicatedShardClient

    target = client
    if isinstance(client, ReplicatedShardClient):
        target = client._live_members()[0]
    wrapped = FaultyTransport(
        target._transport,
        spec.mode,
        after_frames=spec.after_frames,
        delay_s=spec.delay_s,
        io_timeout=getattr(target, "_io_timeout", None),
    )
    target._transport = wrapped
    return wrapped


def inject_store(store: Any, spec: FaultSpec) -> FaultyTransport:
    """Apply ``spec`` to one shard of a tcp ``ShardedMetricStore``.

    The CLI's ``--inject-fault`` entry point: validates that the
    target shard is a remote (tcp) one and wraps its (primary)
    transport.  Raises ``ValueError`` for non-tcp backends or an
    out-of-range shard — usage errors, reported before any simulation
    work starts.
    """
    if getattr(store, "backend", None) != "tcp":
        raise ValueError(
            "--inject-fault requires the tcp shard backend "
            "(--shard-backend tcp)"
        )
    shards = store.shards
    if not 0 <= spec.shard < len(shards):
        raise ValueError(
            f"fault target shard {spec.shard} out of range "
            f"(store has {len(shards)} shards)"
        )
    return inject_client(shards[spec.shard], spec)
