"""Hash-partitioned sharding of the metric store.

The paper's production pipeline ingests ~3 GB/s by spreading counter
rows across many trace-store machines and merging scoped queries over
the partitions.  :class:`ShardedMetricStore` is that topology behind
one facade: N shards, rows routed by
``interned_server_index % n_shards``, one shared
:class:`~repro.telemetry.store.ServerInterner` (or a replicated copy
per worker process) so indices — and thus query ordering — stay
globally consistent.

Four interchangeable **backends** decide where the shards live:

``"serial"``
    N local :class:`~repro.telemetry.store.MetricStore` objects,
    appended to one after another on the caller's thread.  Zero
    dispatch overhead; the baseline every other backend must match
    bit-for-bit.
``"threads"``
    The same local shards, fanned out through a
    ``concurrent.futures`` thread pool (``workers`` wide).  Each
    partition lands on exactly one shard per call, so the fan-out
    needs no locks; NumPy append work releases the GIL, which is
    where overlap pays on multi-core machines.
``"processes"``
    Each shard is a :class:`~repro.telemetry.workers.ShardWorker` —
    a ``MetricStore`` owned by a ``multiprocessing`` child, fed
    pickled-ndarray command messages over a pipe (coalesced by a
    batching/flush protocol) and queried over synchronous RPC.  Every
    row pays one pickling crossing, so on a single CPU this is
    strictly slower than serial — its value is moving shard memory
    and query CPU off the ingesting process, the stepping stone to
    shards on other machines.  See :mod:`repro.telemetry.workers`
    for the message protocol.
``"tcp"``
    Each shard is a :class:`~repro.telemetry.workers.TcpShardClient`
    session on a ``repro shard-server`` (one ``host:port`` per shard
    in ``shard_addrs``; the same address may repeat — every
    connection gets its own fresh store).  Identical protocol and
    coalescing as the processes backend, over length-prefixed pickle
    frames instead of a pipe — true multi-machine shards.  See
    ``docs/DISTRIBUTED.md`` for the wire format and operations.

**Queries** merge shard results shard-wise, identically for every
backend:

* ``count`` / ``max`` aggregates sum (respectively maximum) per-shard
  bincount partials over the union of windows — exact, because integer
  sums and maxima are associative;
* ``sum`` / ``mean`` aggregates re-gather the raw shard columns into
  the single store's canonical accumulation order first (float addition
  is *not* associative, so summing per-shard partials would drift in
  the last ulp and break the bit-identity guarantee);
* :meth:`pool_matrix` stacks per-shard dense matrices by column slice
  (every cell lives on exactly one shard);
* :meth:`per_server_values` and :meth:`server_series` route to the one
  shard that owns the server.

The result: every query on a :class:`ShardedMetricStore` fed by the
batch (or blocked-batch) simulation engine is **bit-identical** to the
same query on a single :class:`MetricStore` fed by the same engine —
for all four backends, including byte-identical archive exports —
proven by ``tests/test_sharded_store.py`` and
``tests/test_sim_equivalence.py``.
"""

from __future__ import annotations

import pickle
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.telemetry.counters import CounterSample
from repro.telemetry.series import TimeSeries
from repro.telemetry.transport import (
    DEFAULT_CONNECT_TIMEOUT,
    DEFAULT_IO_TIMEOUT,
    parse_address,
)
from repro.telemetry.workers import (
    DEFAULT_FLUSH_ROWS,
    DEFAULT_PIPELINE_DEPTH,
    ReplicatedShardClient,
    ShardClient,
    ShardWorker,
    TcpShardClient,
)
from repro.telemetry.store import (
    MetricStore,
    ServerInterner,
    TableKey,
    _TrackedAggregate,
    columnise_samples,
    window_aggregate_arrays,
)

_REDUCERS = ("mean", "sum", "max", "count")

#: Valid values of the ``backend`` constructor knob.
BACKENDS = ("serial", "threads", "processes", "tcp")

#: Backends whose shards live behind a connection (buffered ingest,
#: explicit flush, close() tears the connection down).
_REMOTE_BACKENDS = ("processes", "tcp")

#: A shard handle: a local store or a remote-shard client proxy
#: (worker process, TCP session, or replicated TCP group).  All expose
#: the same ingest/query surface, which is what lets the facade treat
#: "where does this shard live" as a construction detail.
Shard = Union[MetricStore, ShardClient, ReplicatedShardClient]


class ShardJournal:
    """Replayable log of one shard's ingest commands, spillable to disk.

    The raw material of :meth:`ShardedMetricStore.rejoin_shard`: every
    ingest command the facade dispatches to a shard is also appended
    here, so a restarted shard server can be replayed back to the
    exact pre-crash store state (commands re-run in the original
    order produce bit-identical tables).

    Memory is bounded: commands are journaled *by reference* (stores
    never mutate ingested columns, so no copy is needed), and once
    ``memory_rows`` rows are buffered the batch is pickled to an
    anonymous temp file and the references dropped — the journal's
    steady-state memory is one batch, however long the run.
    ``replay`` streams spilled batches back from disk first, then the
    still-buffered tail, in exact append order.

    Single-owner, like the facade's ingest path; not thread-safe.
    """

    def __init__(self, memory_rows: int) -> None:
        if memory_rows < 1:
            raise ValueError("memory_rows must be >= 1")
        self._memory_rows = memory_rows
        self._commands: List[Tuple[str, tuple]] = []
        self._rows = 0
        self._spill = None
        #: How many batches went to disk (observable spill behaviour,
        #: asserted by the fault-tolerance tests).
        self.spilled_batches = 0

    def append(self, method: str, args: tuple, n_rows: int) -> None:
        self._commands.append((method, args))
        self._rows += n_rows
        if self._rows >= self._memory_rows:
            self._spill_buffer()

    def _spill_buffer(self) -> None:
        if self._spill is None:
            self._spill = tempfile.TemporaryFile(prefix="shard-journal-")
        pickle.dump(
            self._commands, self._spill, protocol=pickle.HIGHEST_PROTOCOL
        )
        self._commands = []
        self._rows = 0
        self.spilled_batches += 1

    def replay(self) -> Iterator[Tuple[str, tuple]]:
        """Yield every journaled ``(method, args)`` in append order.

        Consume fully before appending again: replay rewinds the spill
        file and seeks back to the end only once exhausted.
        """
        if self._spill is not None:
            self._spill.flush()
            self._spill.seek(0)
            while True:
                try:
                    batch = pickle.load(self._spill)
                except EOFError:
                    break
                yield from batch
            self._spill.seek(0, 2)
        yield from list(self._commands)

    def close(self) -> None:
        """Drop the buffer and delete the spill file; idempotent."""
        if self._spill is not None:
            try:
                self._spill.close()
            except Exception:  # pragma: no cover - best effort
                pass
            self._spill = None
        self._commands = []
        self._rows = 0


def _shard_member_addresses(
    shard_addrs: Sequence[str],
    replica_addrs: Optional[Sequence],
) -> List[Tuple[str, ...]]:
    """Resolve the tcp topology: per shard, (primary, *replicas).

    ``replica_addrs`` must align with ``shard_addrs`` when given; each
    entry is one ``host:port``, a sequence of them, or ``None``/``""``
    for an un-replicated shard.  Every address is parse-validated here,
    before anything is dialled.
    """
    if replica_addrs is not None and len(replica_addrs) != len(shard_addrs):
        raise ValueError(
            f"replica_addrs must align with shard_addrs "
            f"({len(replica_addrs)} != {len(shard_addrs)})"
        )
    members: List[Tuple[str, ...]] = []
    for shard_id, address in enumerate(shard_addrs):
        parse_address(address)
        addresses = [address]
        if replica_addrs is not None:
            entry = replica_addrs[shard_id]
            replicas = (
                []
                if entry is None or entry == ""
                else [entry] if isinstance(entry, str) else list(entry)
            )
            for replica in replicas:
                parse_address(replica)
            addresses.extend(replicas)
        members.append(tuple(addresses))
    return members


class ShardedMetricStore:
    """N hash-partitioned metric-store shards behind one facade.

    Drop-in replacement for a single :class:`MetricStore`: the public
    surface (interning, ``record*`` ingest, every query, and
    :meth:`iter_tables` for the archive exporter) matches.  Query
    results are bit-identical to a single store fed the same batches —
    independent of ``backend`` — provided each table's rows arrive in
    canonical (window asc, server asc) order, which every simulation
    engine guarantees; for arbitrary ingest orders, ``sum``/``mean``
    aggregates may differ from the single store in the last ulp (the
    facade re-accumulates in canonical order, the single store in raw
    append order), while all other queries remain exact.

    Parameters
    ----------
    n_shards:
        Number of partitions.  Rows are routed by
        ``server_index % n_shards``, so one server's history always
        lives on one shard.
    workers:
        Ingest fan-out width for the ``"threads"`` backend (capped at
        ``n_shards`` — more workers than shards cannot help).  The
        other backends reject ``workers > 1`` to catch confused call
        sites: serial has no fan-out at all, and processes/tcp always
        run exactly one remote shard per partition.
    backend:
        ``"serial"``, ``"threads"``, ``"processes"`` or ``"tcp"`` (see
        the module docstring for the trade-offs).  ``None`` (default)
        keeps the historical behaviour: ``"threads"`` when
        ``workers > 1``, ``"serial"`` otherwise.
    flush_rows:
        Remote backends (processes/tcp) only: how many buffered rows
        trigger one coalesced ingest message to a shard (see
        :meth:`ShardClient.flush`).  Smaller values lower peak memory;
        larger values amortise pickling better.
    shard_addrs:
        TCP backend only (and required by it): one ``host:port`` per
        shard, each dialled as its own ``repro shard-server`` session.
        Addresses may repeat — every connection gets an independent
        store on the server — and ``n_shards`` is taken from
        ``len(shard_addrs)``.
    connect_timeout:
        TCP backend only: how long each shard connection retries a
        refused dial before failing (covers starting client and
        server concurrently).
    pipeline_depth:
        Remote backends only: how many coalesced ingest frames may be
        queued or in flight per shard before the next flush blocks
        (each shard gets one writer thread, so partitioning the next
        block overlaps with the wire).  0 sends synchronously on the
        caller's thread — the pre-pipelining behaviour.  Ordering is
        unaffected either way: queries drain the queue first, so
        reads always observe all previously buffered ingest.
    io_timeout:
        TCP backend only: per-operation socket bound (seconds).  A
        send or recv that makes no progress for this long raises a
        per-shard ``RuntimeError`` naming the shard and address
        instead of hanging on a hung-but-alive peer; ``None`` (or
        ``<= 0``) disables the bound.
    binary_frames:
        TCP backend only: offer the pickle-free binary column frame
        to each shard server (used when the peer advertises it; a PR 4
        server transparently keeps receiving pickle frames).  False
        forces pickle framing for benchmarking or debugging.
    replica_addrs:
        TCP backend only: replica addresses aligned with
        ``shard_addrs`` — entry *i* is the replica (a ``host:port``
        string) or replica set (a sequence of them) mirroring shard
        *i*; ``None`` or ``""`` entries leave that shard
        un-replicated.  Every ingest frame fans out to the whole
        member set, so when a primary dies or hangs (the per-shard
        timeout/EOF errors) queries and further ingest fail over to a
        live replica with **bit-identical** results — replicas
        consumed identical coalesced frames, so failover is invisible
        in every answer and export.  The run only fails when a shard's
        *last* member dies.
    journal_rows:
        TCP backend only: enable the per-shard ingest journal that
        :meth:`rejoin_shard` replays into a restarted shard server,
        keeping at most this many rows buffered in memory per shard
        before spilling the batch to an anonymous temp file.  ``None``
        (default) disables journaling — and with it ``rejoin_shard``
        — at zero cost.

    A store with remote shards owns connections (and, for processes,
    child processes), so treat it like a file: use the
    context-manager form or call :meth:`close` when done.  ``close``
    is idempotent, fork-safe, and safe to call while another thread
    is mid-ingest — the racing ingest either completes or raises a
    clean ``RuntimeError``, never a torn dispatch.
    """

    def __init__(
        self,
        n_shards: int = 4,
        workers: int = 1,
        backend: Optional[str] = None,
        flush_rows: int = DEFAULT_FLUSH_ROWS,
        shard_addrs: Optional[Sequence[str]] = None,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
        io_timeout: Optional[float] = DEFAULT_IO_TIMEOUT,
        binary_frames: bool = True,
        replica_addrs: Optional[Sequence] = None,
        journal_rows: Optional[int] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if pipeline_depth < 0:
            raise ValueError("pipeline_depth must be >= 0")
        if backend is None:
            backend = "threads" if workers > 1 else "serial"
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if backend == "serial" and workers > 1:
            raise ValueError("backend='serial' cannot use workers > 1")
        if backend in _REMOTE_BACKENDS and workers > 1:
            raise ValueError(
                f"backend={backend!r} always runs one remote shard per "
                "partition; workers > 1 is meaningless"
            )
        shard_addresses: Optional[List[Tuple[str, ...]]] = None
        if backend == "tcp":
            if not shard_addrs:
                raise ValueError(
                    "backend='tcp' requires shard_addrs (one host:port "
                    "per shard)"
                )
            # Validate the whole topology — primaries and replicas —
            # before dialling anything: a typo in address 3 must not
            # leave sessions 0-2 connected to servers that will never
            # get a stop message.
            shard_addresses = _shard_member_addresses(shard_addrs, replica_addrs)
            n_shards = len(shard_addresses)
            if journal_rows is not None and journal_rows < 1:
                raise ValueError("journal_rows must be >= 1 (or None)")
        else:
            if shard_addrs is not None:
                raise ValueError(
                    "shard_addrs is only meaningful with backend='tcp'"
                )
            if replica_addrs is not None:
                raise ValueError(
                    "replica_addrs is only meaningful with backend='tcp'"
                )
            if journal_rows is not None:
                raise ValueError(
                    "journal_rows is only meaningful with backend='tcp'"
                )
        self._backend = backend
        self._interner = ServerInterner()
        self._shard_addresses = shard_addresses
        self._tcp_kwargs = dict(
            flush_rows=flush_rows,
            connect_timeout=connect_timeout,
            io_timeout=io_timeout,
            binary_frames=binary_frames,
            pipeline_depth=pipeline_depth,
        )
        self._journals: Optional[List[ShardJournal]] = (
            [ShardJournal(journal_rows) for _ in range(n_shards)]
            if backend == "tcp" and journal_rows is not None
            else None
        )
        self._shards: List[Shard]
        if backend == "processes":
            self._shards = [
                ShardWorker(
                    shard_id, self._interner, flush_rows=flush_rows,
                    pipeline_depth=pipeline_depth,
                )
                for shard_id in range(n_shards)
            ]
        elif backend == "tcp":
            self._shards = []
            try:
                for shard_id, addresses in enumerate(shard_addresses):
                    self._shards.append(self._dial_shard(shard_id, addresses))
            except BaseException:
                # A later dial failed: say goodbye to the sessions
                # already opened instead of leaking them server-side.
                for shard in self._shards:
                    try:
                        shard.close()
                    except Exception:  # pragma: no cover - best effort
                        pass
                raise
        else:
            self._shards = [
                MetricStore(interner=self._interner) for _ in range(n_shards)
            ]
        if backend == "threads" and workers == 1:
            workers = n_shards
        self._workers = min(workers, n_shards)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._agg_cache: Dict[Tuple, TimeSeries] = {}
        #: Streaming state mirrored at the facade: the eviction
        #: watermark applied to every shard, and the incrementally
        #: maintained aggregate series (facade-merged, so they are
        #: bit-identical to the unsharded store's tracked series).
        self._evicted_before: int = 0
        self._tracked: Dict[Tuple, _TrackedAggregate] = {}
        self._lifecycle_lock = threading.Lock()
        self._closed = False
        #: Synchronization seam for concurrent readers (the live query
        #: server) — same contract as :attr:`MetricStore.lock`: the
        #: facade stays single-owner, a streaming writer holds the lock
        #: across each block span and readers take it per query.
        self._lock = threading.RLock()
        # One-entry partition memo: the blocked engine hands the same
        # (windows, server_indices) array pair to record_columns once
        # per counter, so the shard routing of a block is computed once
        # and reused ~a-dozen times.  Holding strong references to the
        # keyed arrays keeps the identity check sound (their ids cannot
        # be recycled while cached).
        self._partition_cache: Optional[Tuple] = None

    @property
    def lock(self) -> "threading.RLock":
        """Reentrant lock serializing a clock-loop writer and readers.

        Queries on remote backends flush shard ingest buffers, so a
        reader thread must never interleave with the writer's block —
        the streaming loop holds this across each ingest→seal→evict
        span and :class:`~repro.telemetry.query_server.\
LiveQuerySurface` takes it around every read.
        """
        return self._lock

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def backend(self) -> str:
        """The shard placement backend: serial, threads, processes or tcp."""
        return self._backend

    @property
    def workers(self) -> int:
        """Thread fan-out width (``"threads"`` backend; 1 otherwise means
        the caller's thread does all appends)."""
        return self._workers

    @property
    def shards(self) -> Tuple[Shard, ...]:
        """The underlying shard handles (read-only view, for tests).

        Local :class:`MetricStore` objects for the serial/threads
        backends, :class:`ShardWorker` / :class:`TcpShardClient`
        proxies for the remote backends — all answer the same query
        methods (the proxies over RPC).
        """
        return tuple(self._shards)

    def shard_of(self, server_index: int) -> int:
        """The shard that owns a server's rows (any backend)."""
        return server_index % len(self._shards)

    def _dial_shard(self, shard_id: int, addresses: Tuple[str, ...]) -> Shard:
        """Connect one tcp shard: a plain session or a replica group."""
        if len(addresses) == 1:
            return TcpShardClient(
                shard_id, self._interner, addresses[0], **self._tcp_kwargs
            )
        return ReplicatedShardClient(
            shard_id, self._interner, addresses, **self._tcp_kwargs
        )

    def rejoin_shard(self, shard_id: int, address: Optional[str] = None) -> None:
        """Re-attach a restarted shard server and replay its journal.

        The recovery path for the tcp backend: after shard
        ``shard_id``'s server died (its queries raise the per-shard
        connection error) and was restarted — on the same address or,
        with ``address``, somewhere new — this drops the dead session,
        dials a fresh one, sends the ``resync`` RPC (the serve loop
        swaps in an empty store and receives the *full* interner name
        table), and replays every journaled ingest command in original
        order.  The rejoined shard's store is then **bit-identical**
        to the pre-crash one: same commands, same order, same tables —
        every query and export answers as if the crash never happened.

        Requires ``journal_rows`` (journaling) to have been enabled at
        construction; raises ``RuntimeError`` otherwise.  For a
        replicated shard the whole member group is re-dialled and
        re-seeded.  On any failure the half-built session is closed
        and the old (dead) handle stays in place, so ``rejoin_shard``
        can simply be retried.
        """
        self._ensure_open()
        if self._backend != "tcp":
            raise ValueError("rejoin_shard requires backend='tcp'")
        if not 0 <= shard_id < len(self._shards):
            raise ValueError(
                f"shard_id {shard_id} out of range "
                f"(store has {len(self._shards)} shards)"
            )
        if self._journals is None:
            raise RuntimeError(
                "rejoin_shard requires the ingest journal — construct "
                "the store with journal_rows=N"
            )
        old = self._shards[shard_id]
        addresses = (
            (address,) if address is not None else tuple(old.addresses)
        )
        for member in addresses:
            parse_address(member)
        try:
            old.close()
        except Exception:  # pragma: no cover - dead peer teardown
            pass
        client = self._dial_shard(shard_id, addresses)
        try:
            client.resync()
            for method, args in self._journals[shard_id].replay():
                getattr(client, method)(*args)
            client.flush()
        except BaseException:
            try:
                client.close()
            except Exception:  # pragma: no cover - best effort
                pass
            raise
        self._shards[shard_id] = client
        self._shard_addresses[shard_id] = addresses
        self._agg_cache.clear()

    def close(self) -> None:
        """Release backend resources; idempotent, fork- and race-safe.

        Threads backend: shuts the executor down, letting already
        submitted shard appends finish.  Remote backends (processes /
        tcp): stops every remote shard (graceful ``stop`` message;
        worker children additionally get ``terminate()`` after a
        timeout), after which the store no longer answers queries —
        archive first.  Calling ``close`` a second time, or from a
        process that forked after construction, is a safe no-op for
        the original owner's shards: only the creating process ever
        tears remote shards down, so a forked child closing its
        inherited copy cannot yank live shards out from under the
        parent (regression-tested via
        ``multiprocessing.active_children()``).

        ``close`` may also race an in-flight ingest on another thread:
        the lifecycle lock makes the closed flag and the executor
        handoff atomic, so the racing ``record_*`` call either runs to
        completion before the executor drains or raises a clean
        ``RuntimeError("ShardedMetricStore is closed")`` — never the
        executor's own "cannot schedule new futures" surprise or a
        send on a torn-down worker connection.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        if self._backend in _REMOTE_BACKENDS:
            for shard in self._shards:
                shard.close()
        if self._journals is not None:
            for journal in self._journals:
                journal.close()

    def __enter__(self) -> "ShardedMetricStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def flush(self) -> None:
        """Force buffered remote ingest out (processes/tcp backends).

        No-op for serial/threads, where appends are synchronous.  Not
        normally needed — every query flushes the shard it reads — but
        useful to bound parent-side buffer memory at a known point.
        With pipelining the flushed frames may still be queued or in
        flight afterwards (bounded by ``pipeline_depth``); any query
        acts as the full drain barrier.
        """
        if self._backend in _REMOTE_BACKENDS:
            for shard in self._shards:
                shard.flush()

    def _ensure_open(self) -> None:
        """Ingest guard: a closed store must fail loudly, not race.

        Raised eagerly on every ``record_*`` entry point so the
        threads backend cannot submit to a drained executor and the
        remote backends cannot write to a torn-down connection.
        """
        if self._closed:
            raise RuntimeError("ShardedMetricStore is closed")

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lifecycle_lock:
            if self._closed:
                raise RuntimeError("ShardedMetricStore is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="metric-shard",
                )
            return self._executor

    # ------------------------------------------------------------------
    # Server interning (shared across shards)
    # ------------------------------------------------------------------
    @property
    def interner(self) -> ServerInterner:
        """The facade's authoritative id space.  Worker processes hold
        replicas, synced by name-delta messages (see
        :mod:`repro.telemetry.workers`)."""
        return self._interner

    def intern_server(self, server_id: str) -> int:
        """Map a server id to its stable global integer index."""
        return self._interner.intern(server_id)

    def intern_servers(self, server_ids: Sequence[str]) -> np.ndarray:
        """Intern many server ids at once (the batch hot path setup)."""
        return self._interner.intern_many(server_ids)

    def server_name(self, index: int) -> str:
        return self._interner.name(index)

    # ------------------------------------------------------------------
    # Ingest (shard fan-out)
    # ------------------------------------------------------------------
    def _dispatch(self, parts: List[Tuple[int, tuple]], method: str) -> None:
        """Run ``shard.<method>(*args)`` for every (shard id, args) part.

        Each partition touches exactly one shard, so concurrent
        dispatch needs no locking; the caller thread owns the interner
        and all bookkeeping that spans shards.  Backends differ only
        here: serial runs parts inline; threads submits them to the
        pool and waits; processes hands them to the worker proxies,
        whose buffered ingest returns immediately (the pickling cost is
        paid at flush time, the ack — if an ingest error occurred — at
        the next query).
        """
        if (
            self._backend == "threads"
            and self._workers > 1
            and len(parts) > 1
        ):
            executor = self._ensure_executor()
            try:
                futures = [
                    executor.submit(getattr(self._shards[shard_id], method), *args)
                    for shard_id, args in parts
                ]
            except RuntimeError as error:
                # Lost the race with close(): the executor drained
                # between _ensure_executor and submit.  Surface the
                # same clean error a pre-checked caller would see.
                raise RuntimeError("ShardedMetricStore is closed") from error
            for future in futures:
                future.result()
        else:
            for shard_id, args in parts:
                getattr(self._shards[shard_id], method)(*args)

    def record_columns(
        self,
        pool_id: str,
        datacenter_id: str,
        counter: str,
        windows: np.ndarray,
        server_indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Partition pre-columnised rows by server index and append.

        Same contract as :meth:`MetricStore.record_columns`; the
        relative row order within each shard is preserved, which is
        what keeps shard tables in the canonical (window, server)
        order the merge layer relies on — for the processes backend
        too, because each worker applies its command stream FIFO.
        With remote shards (processes/tcp), the partitioned arrays are
        buffered and later pickled once each; with serial/threads they
        are appended to local chunk lists with no copy.
        """
        self._ensure_open()
        if values.size == 0:
            return
        n = len(self._shards)
        if n == 1:
            if self._journals is not None:
                self._journals[0].append(
                    "record_columns",
                    (pool_id, datacenter_id, counter, windows,
                     server_indices, values),
                    int(values.size),
                )
            self._shards[0].record_columns(
                pool_id, datacenter_id, counter, windows, server_indices, values
            )
        else:
            cached = self._partition_cache
            if (
                cached is None
                or cached[0] is not windows
                or cached[1] is not server_indices
            ):
                # Route rows to shards once per distinct column pair.
                # Row positions (flatnonzero) rather than boolean masks:
                # the per-counter value gather then only touches the
                # selected rows.  The gathered windows/index arrays are
                # shared by every counter of the block, which is safe
                # for the same reason the unsharded store may receive
                # one windows array for all counters: stores never
                # mutate ingested columns.
                shard_ids = server_indices % n
                routing = []
                for shard_id in range(n):
                    rows = np.flatnonzero(shard_ids == shard_id)
                    if rows.size == 0:
                        continue
                    routing.append(
                        (shard_id, rows, windows[rows], server_indices[rows])
                    )
                cached = (windows, server_indices, routing)
                self._partition_cache = cached
            parts: List[Tuple[int, tuple]] = [
                (
                    shard_id,
                    (
                        pool_id,
                        datacenter_id,
                        counter,
                        shard_windows,
                        shard_indices,
                        values[rows],
                    ),
                )
                for shard_id, rows, shard_windows, shard_indices in cached[2]
            ]
            if self._journals is not None:
                # Journal before dispatch: rows being sent to a shard
                # that dies mid-dispatch must still be replayable.
                for shard_id, args in parts:
                    self._journals[shard_id].append(
                        "record_columns", args, int(args[5].size)
                    )
            self._dispatch(parts, "record_columns")
        if self._agg_cache:
            self._agg_cache.clear()

    def record_batch(
        self,
        pool_id: str,
        datacenter_id: str,
        counter: str,
        window: int,
        server_ids: Sequence[str],
        values: np.ndarray,
    ) -> None:
        """Append one window of one counter for many servers at once.

        Same contract as :meth:`MetricStore.record_batch` (string ids
        or pre-interned index arrays; buffers may be reused by the
        caller afterwards — the facade copies before partitioning, so
        even process-buffered parts never alias caller memory).
        """
        if isinstance(server_ids, np.ndarray) and server_ids.dtype.kind in "iu":
            indices = np.array(server_ids, dtype=np.int64)
        else:
            indices = self.intern_servers(server_ids)
        values = np.array(values, dtype=float)
        if indices.size != values.size:
            raise ValueError("server_ids and values must be aligned")
        if indices.size == 0:
            return
        windows = np.full(indices.size, window, dtype=np.int64)
        self.record_columns(
            pool_id, datacenter_id, counter, windows, indices, values
        )

    def record_fast(
        self,
        window: int,
        server_id: str,
        pool_id: str,
        datacenter_id: str,
        counter: str,
        value: float,
    ) -> None:
        """Append one sample (compatibility shim; routes to one shard).

        On the remote backends the scalar rides the owner shard's
        coalescing ingest buffer, so even sample-at-a-time callers pay
        ~one message per ``flush_rows`` samples, not per sample.
        """
        self._ensure_open()
        index = self._interner.intern(server_id)
        shard_id = index % len(self._shards)
        if self._journals is not None:
            self._journals[shard_id].append(
                "record_fast",
                (window, server_id, pool_id, datacenter_id, counter, value),
                1,
            )
        self._shards[shard_id].record_fast(
            window, server_id, pool_id, datacenter_id, counter, value
        )
        if self._agg_cache:
            self._agg_cache.clear()

    def record(self, sample: CounterSample) -> None:
        """Append one counter sample (compatibility shim)."""
        self.record_fast(
            sample.window_index,
            sample.server_id,
            sample.pool_id,
            sample.datacenter_id,
            sample.counter,
            sample.value,
        )

    def record_many(self, samples) -> None:
        """Append many samples, columnised per table then fanned out."""
        for (pool_id, dc_id, counter), windows, indices, values in columnise_samples(
            samples, self.intern_server
        ):
            self.record_columns(pool_id, dc_id, counter, windows, indices, values)

    # ------------------------------------------------------------------
    # Streaming: rolling retention and incremental aggregates
    # ------------------------------------------------------------------
    @property
    def evicted_before(self) -> int:
        """Windows below this index live in shard spill archives."""
        return self._evicted_before

    @property
    def sealed_through(self) -> int:
        """Largest window every tracked aggregate is final through; -1
        with no tracked aggregates (or before the first seal)."""
        if not self._tracked:
            return -1
        return min(t.sealed_through for t in self._tracked.values())

    def evict_windows(self, before: int) -> int:
        """Move rows with ``window < before`` to every shard's spill.

        Same contract as :meth:`MetricStore.evict_windows`, fanned out
        to all shards (each shard owns its servers' rows, so the union
        of shard evictions is exactly the unsharded eviction).  The
        command is journaled like ingest, so a rejoined shard replays
        its eviction history and reproduces the same hot/spill split.
        Returns the total rows evicted across shards.
        """
        self._ensure_open()
        if before <= self._evicted_before:
            return 0
        if self._journals is not None:
            for journal in self._journals:
                journal.append("evict_windows", (before,), 0)
        evicted = 0
        for shard in self._shards:
            evicted += int(shard.evict_windows(before) or 0)
        self._evicted_before = before
        if evicted and self._agg_cache:
            self._agg_cache.clear()
        return evicted

    def hot_sample_count(self) -> int:
        """Samples currently held in shard memory (excludes spill)."""
        return sum(int(shard.hot_sample_count()) for shard in self._shards)

    def track_aggregate(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        reducer: str = "mean",
    ) -> None:
        """Maintain ``pool_window_aggregate(...)`` incrementally.

        Same contract as :meth:`MetricStore.track_aggregate`; the
        series is maintained at the facade (from facade-merged shard
        results), so it is bit-identical to the unsharded store's
        tracked series on every backend.
        """
        if reducer not in _REDUCERS:
            raise ValueError(f"unknown reducer {reducer!r}")
        key = (pool_id, counter, datacenter_id, reducer)
        if key not in self._tracked:
            self._tracked[key] = _TrackedAggregate(reducer)

    def seal_through(self, window: int) -> None:
        """Mark windows ``<= window`` complete; extend tracked series.

        Same contract as :meth:`MetricStore.seal_through`.  Each
        tracked aggregate merges only the newly sealed window range
        from the shards (partial merge for count/max, canonical
        re-gather for sum/mean) — per-window results are final once
        sealed, so the appended partials equal a full recompute.
        """
        for (pool_id, counter, datacenter_id, reducer), tracker in self._tracked.items():
            if window <= tracker.sealed_through:
                continue
            lo = tracker.sealed_through + 1
            series = self._compute_window_aggregate(
                pool_id, counter, datacenter_id, lo, window + 1, reducer
            )
            tracker.extend(
                np.asarray(series.windows, dtype=np.int64),
                np.asarray(series.values, dtype=float),
                window,
            )

    # ------------------------------------------------------------------
    # Introspection (shard unions)
    # ------------------------------------------------------------------
    @property
    def pools(self) -> Tuple[str, ...]:
        names: Set[str] = set()
        for shard in self._shards:
            names.update(shard.pools)
        return tuple(sorted(names))

    @property
    def datacenters(self) -> Tuple[str, ...]:
        names: Set[str] = set()
        for shard in self._shards:
            names.update(shard.datacenters)
        return tuple(sorted(names))

    @property
    def max_window(self) -> int:
        """Largest window index seen on any shard; -1 when empty."""
        return max(shard.max_window for shard in self._shards)

    def counters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        names: Set[str] = set()
        for shard in self._shards:
            names.update(shard.counters_for_pool(pool_id))
        return tuple(sorted(names))

    def servers_in_pool(
        self,
        pool_id: str,
        datacenter_id: Optional[str] = None,
    ) -> Tuple[str, ...]:
        names: Set[str] = set()
        for shard in self._shards:
            names.update(shard.servers_in_pool(pool_id, datacenter_id))
        return tuple(sorted(names))

    def datacenters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        names: Set[str] = set()
        for shard in self._shards:
            names.update(shard.datacenters_for_pool(pool_id))
        return tuple(sorted(names))

    def datacenters_for_pool_counter(
        self, pool_id: str, counter: str
    ) -> Tuple[str, ...]:
        names: Set[str] = set()
        for shard in self._shards:
            names.update(shard.datacenters_for_pool_counter(pool_id, counter))
        return tuple(sorted(names))

    def sample_count(self) -> int:
        """Total number of stored samples across all shards.

        Doubles as the cheapest read-your-writes barrier on the
        processes backend: it flushes and round-trips every worker.
        """
        return sum(shard.sample_count() for shard in self._shards)

    def iter_tables(
        self,
    ) -> Iterator[Tuple[TableKey, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield (key, windows, server indices, values) per shard table.

        A table key may appear once per shard (each shard holds its
        servers' slice of the table); the archive exporter regroups
        rows per server, and every server lives on exactly one shard,
        so exports come out **byte-identical** to a single store's —
        the processes backend ships each shard's tables back as one
        pickled list, in the same shard order.
        """
        for shard in self._shards:
            yield from shard.iter_tables()

    # ------------------------------------------------------------------
    # Queries (shard-wise merges)
    # ------------------------------------------------------------------
    def _dcs_for(self, pool_id: str, counter: str) -> List[str]:
        """Datacenters holding (pool, counter) rows on any shard, sorted."""
        dcs: Set[str] = set()
        for shard in self._shards:
            dcs.update(shard.datacenters_for_pool_counter(pool_id, counter))
        return sorted(dcs)

    def gather_columns(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shard rows re-merged into the single store's canonical order.

        Per datacenter (sorted, as :meth:`MetricStore._matching_tables`
        orders tables), shard columns are concatenated and stably
        lexsorted by (window, server index).  Because the batch and
        blocked engines append each table in exactly that order, the
        merged columns are bit-identical to what an unsharded store
        would hand its own aggregation kernel — including the float
        accumulation order of downstream ``np.bincount`` sums.  Shard
        placement is invisible here: local shards return array views,
        workers return pickled copies, and the merge is the same.
        """
        dcs = [datacenter_id] if datacenter_id is not None else self._dcs_for(
            pool_id, counter
        )
        ws: List[np.ndarray] = []
        ss: List[np.ndarray] = []
        vs: List[np.ndarray] = []
        for dc in dcs:
            w_parts: List[np.ndarray] = []
            s_parts: List[np.ndarray] = []
            v_parts: List[np.ndarray] = []
            for shard in self._shards:
                w, s, v = shard.gather_columns(pool_id, counter, dc, start, stop)
                if w.size:
                    w_parts.append(w)
                    s_parts.append(s)
                    v_parts.append(v)
            if not w_parts:
                continue
            w = np.concatenate(w_parts) if len(w_parts) > 1 else w_parts[0]
            s = np.concatenate(s_parts) if len(s_parts) > 1 else s_parts[0]
            v = np.concatenate(v_parts) if len(v_parts) > 1 else v_parts[0]
            order = np.lexsort((s, w))
            ws.append(w[order])
            ss.append(s[order])
            vs.append(v[order])
        if not ws:
            empty = np.array([], dtype=np.int64)
            return empty, empty, np.array([], dtype=float)
        if len(ws) == 1:
            return ws[0], ss[0], vs[0]
        return np.concatenate(ws), np.concatenate(ss), np.concatenate(vs)

    def pool_window_aggregate(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        reducer: str = "mean",
    ) -> TimeSeries:
        """Per-window aggregate merged across shards.

        ``count`` and ``max`` merge per-shard bincount partials over
        the union of windows (associative, hence exact — and the
        cheapest plan for process shards, since only the small partial
        series crosses the pipe).  ``sum`` and ``mean`` instead
        aggregate the canonically re-ordered gather of all shard rows,
        so their float accumulation order — and therefore every output
        bit — matches the unsharded store, at the cost of moving the
        raw columns (one pickled copy per process shard).  Results are
        memoized until the next ingest, like the single store's cache.
        """
        if reducer not in _REDUCERS:
            raise ValueError(f"unknown reducer {reducer!r}")
        if self._tracked:
            tracked = self._tracked.get(
                (pool_id, counter, datacenter_id, reducer)
            )
            if tracked is not None:
                lo = start if start is not None else 0
                hi = stop if stop is not None else self.max_window + 1
                if hi - 1 <= tracked.sealed_through:
                    # Served from the incrementally maintained series:
                    # no shard round-trips, no re-gather.
                    return tracked.series_slice(lo, hi)
        cache_key = (pool_id, counter, datacenter_id, start, stop, reducer)
        cached = self._agg_cache.get(cache_key)
        if cached is not None:
            return cached

        def memoize(series: TimeSeries) -> TimeSeries:
            series.windows.setflags(write=False)
            series.values.setflags(write=False)
            self._agg_cache[cache_key] = series
            return series

        return memoize(
            self._compute_window_aggregate(
                pool_id, counter, datacenter_id, start, stop, reducer
            )
        )

    def _compute_window_aggregate(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str],
        start: Optional[int],
        stop: Optional[int],
        reducer: str,
    ) -> TimeSeries:
        """The uncached shard-merged aggregate behind
        :meth:`pool_window_aggregate` and :meth:`seal_through`."""
        empty = TimeSeries(np.array([], dtype=int), np.array([], dtype=float))
        if reducer in ("count", "max"):
            partials = [
                shard.pool_window_aggregate(
                    pool_id, counter, datacenter_id, start, stop, reducer
                )
                for shard in self._shards
            ]
            partials = [p for p in partials if len(p)]
            if not partials:
                return empty
            all_windows = partials[0].windows
            for part in partials[1:]:
                all_windows = np.union1d(all_windows, part.windows)
            fill = 0.0 if reducer == "count" else -np.inf
            acc = np.full(all_windows.size, fill)
            for part in partials:
                pos = np.searchsorted(all_windows, part.windows)
                if reducer == "count":
                    acc[pos] += part.values
                else:
                    np.maximum.at(acc, pos, part.values)
            return TimeSeries.from_sorted(all_windows, acc)

        windows, _servers, values = self.gather_columns(
            pool_id, counter, datacenter_id, start, stop
        )
        if windows.size == 0:
            return empty
        out_windows, out_values = window_aggregate_arrays(windows, values, reducer)
        return TimeSeries.from_sorted(out_windows, out_values)

    def per_server_values(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> Dict[str, np.ndarray]:
        """All window values per server, merged across shards.

        Every server lives on exactly one shard, so the merge is a
        plain dict union — per-server arrays are the shard's arrays
        (or, for process shards, their pickled copies), bit-identical
        to the unsharded ones.
        """
        out: Dict[str, np.ndarray] = {}
        for shard in self._shards:
            out.update(
                shard.per_server_values(
                    pool_id, counter, datacenter_id, start, stop
                )
            )
        return out

    def server_series(
        self,
        pool_id: str,
        counter: str,
        server_id: str,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> TimeSeries:
        """Series of one counter on one server (routed to its shard).

        Exactly one shard — local object or worker RPC — answers; no
        merging, hence trivially bit-identical on every backend.
        """
        index = self._interner.index.get(server_id)
        if index is None:
            return TimeSeries(np.array([], dtype=int), np.array([], dtype=float))
        return self._shards[index % len(self._shards)].server_series(
            pool_id, counter, server_id, start, stop
        )

    def pool_matrix(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> Tuple[np.ndarray, Tuple[str, ...], np.ndarray]:
        """Dense (windows, server_ids, values) cube stacked from shards.

        Each shard contributes the column slice of the servers it owns
        (process shards build theirs in the child and ship one dense
        matrix back); rows are aligned on the union of the shards'
        windows.  Every cell is a single stored value, so stacking is
        exact on all backends.
        """
        index_of = self._interner.index
        parts = []  # (windows, server index array, matrix) per shard
        for shard in self._shards:
            windows, names, matrix = shard.pool_matrix(
                pool_id, counter, datacenter_id, start, stop
            )
            if matrix.size == 0:
                continue
            indices = np.array([index_of[name] for name in names], dtype=np.int64)
            parts.append((windows, indices, matrix))
        if not parts:
            return (
                np.array([], dtype=np.int64),
                (),
                np.empty((0, 0), dtype=float),
            )
        all_windows = parts[0][0]
        for windows, _indices, _matrix in parts[1:]:
            all_windows = np.union1d(all_windows, windows)
        all_servers = np.sort(np.concatenate([p[1] for p in parts]))
        out = np.full((all_windows.size, all_servers.size), np.nan)
        for windows, indices, matrix in parts:
            row_pos = np.searchsorted(all_windows, windows)
            col_pos = np.searchsorted(all_servers, indices)
            out[np.ix_(row_pos, col_pos)] = matrix
        names = tuple(self._interner.name(int(i)) for i in all_servers)
        return all_windows, names, out

    def all_values(
        self,
        counter: str,
        pool_ids: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Every stored value of ``counter`` across shards.

        Values come out shard-major (shard 0's rows first), so the
        *multiset* matches a single store but the order differs; the
        fleet-distribution consumers are order-insensitive.  Same
        shard-major order on every backend.
        """
        chunks = [shard.all_values(counter, pool_ids) for shard in self._shards]
        chunks = [c for c in chunks if c.size]
        if not chunks:
            return np.array([], dtype=float)
        return np.concatenate(chunks)
