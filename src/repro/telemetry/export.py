"""Persisting and reloading telemetry.

The paper's pipeline stores ~3 GB/s of counters for 90 days; downstream
capacity analysis runs on that archive, not on live servers.  This
module gives the library the same separation: a simulation (or a real
collector) can dump its :class:`~repro.telemetry.store.MetricStore` to
a compact CSV archive, and analyses can reload it later without
re-simulating.

Format: one CSV with the columns
``window,server_id,pool_id,datacenter_id,counter,value`` — trivially
greppable, diffable, and loadable from other tools.  gzip compression
is applied when the path ends in ``.gz``.
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro.telemetry.store import MetricStore

_HEADER = ("window", "server_id", "pool_id", "datacenter_id", "counter", "value")

PathLike = Union[str, Path]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8", newline="")
    return open(path, mode, encoding="utf-8", newline="")


def export_store(
    store: MetricStore,
    path: PathLike,
    counters: Optional[Sequence[str]] = None,
) -> int:
    """Write the store to ``path``; returns the number of rows written.

    ``counters`` optionally restricts the export to a subset of counter
    names (e.g. only the planner's working set).
    """
    path = Path(path)
    wanted = set(counters) if counters is not None else None
    rows = 0
    with _open_text(path, "w") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        # Walk the store's internal columns; this module is part of the
        # telemetry package, so reaching into the sibling class is the
        # intended coupling.
        for key, column in sorted(
            store._columns.items(),
            key=lambda item: (
                item[0].pool_id,
                item[0].counter,
                item[0].server_id,
            ),
        ):
            if wanted is not None and key.counter not in wanted:
                continue
            windows, values = column.arrays()
            for window, value in zip(windows, values):
                writer.writerow(
                    (
                        int(window),
                        key.server_id,
                        key.pool_id,
                        key.datacenter_id,
                        key.counter,
                        repr(float(value)),
                    )
                )
                rows += 1
    return rows


def import_store(path: PathLike) -> MetricStore:
    """Load a store previously written by :func:`export_store`."""
    path = Path(path)
    store = MetricStore()
    with _open_text(path, "r") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != _HEADER:
            raise ValueError(
                f"{path} is not a telemetry archive "
                f"(expected header {_HEADER}, got {header})"
            )
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(_HEADER):
                raise ValueError(f"{path}:{line_number}: malformed row {row!r}")
            window, server_id, pool_id, datacenter_id, counter, value = row
            store.record_fast(
                int(window), server_id, pool_id, datacenter_id, counter, float(value)
            )
    return store


def iter_rows(path: PathLike) -> Iterator[dict]:
    """Stream archive rows as dictionaries (for ad-hoc inspection)."""
    path = Path(path)
    with _open_text(path, "r") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            yield {
                "window": int(row["window"]),
                "server_id": row["server_id"],
                "pool_id": row["pool_id"],
                "datacenter_id": row["datacenter_id"],
                "counter": row["counter"],
                "value": float(row["value"]),
            }
