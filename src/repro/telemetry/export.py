"""Persisting and reloading telemetry.

The paper's pipeline stores ~3 GB/s of counters for 90 days; downstream
capacity analysis runs on that archive, not on live servers.  This
module gives the library the same separation: a simulation (or a real
collector) can dump its :class:`~repro.telemetry.store.MetricStore` to
a compact CSV archive, and analyses can reload it later without
re-simulating.

Format: one CSV with the columns
``window,server_id,pool_id,datacenter_id,counter,value`` — trivially
greppable, diffable, and loadable from other tools.  gzip compression
is applied when the path ends in ``.gz``.
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.telemetry.store import MetricStore

_HEADER = ("window", "server_id", "pool_id", "datacenter_id", "counter", "value")

PathLike = Union[str, Path]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8", newline="")
    return open(path, mode, encoding="utf-8", newline="")


def export_store(
    store: "MetricStore",
    path: PathLike,
    counters: Optional[Sequence[str]] = None,
) -> int:
    """Write the store to ``path``; returns the number of rows written.

    ``store`` may be a single :class:`MetricStore` or a
    :class:`~repro.telemetry.sharding.ShardedMetricStore` — only the
    ``iter_tables`` / ``server_name`` surface is used, and because every
    server lives on exactly one shard the archive written from a
    sharded store is byte-identical to the single-store export.

    ``counters`` optionally restricts the export to a subset of counter
    names (e.g. only the planner's working set).
    """
    path = Path(path)
    wanted = set(counters) if counters is not None else None
    # Regroup the columnar tables into per-server runs so the archive
    # keeps its historical (pool, counter, server) ordering.
    entries = []
    for (pool_id, dc_id, counter), windows, servers, values in store.iter_tables():
        if wanted is not None and counter not in wanted:
            continue
        if values.size == 0:
            continue
        order = np.argsort(servers, kind="stable")
        sorted_servers = servers[order]
        boundaries = np.flatnonzero(np.diff(sorted_servers)) + 1
        starts = np.concatenate(([0], boundaries))
        window_runs = np.split(windows[order], boundaries)
        value_runs = np.split(values[order], boundaries)
        for offset, run_windows, run_values in zip(starts, window_runs, value_runs):
            server_id = store.server_name(int(sorted_servers[offset]))
            entries.append(
                (pool_id, counter, server_id, dc_id, run_windows, run_values)
            )
    entries.sort(key=lambda e: (e[0], e[1], e[2]))

    rows = 0
    with _open_text(path, "w") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for pool_id, counter, server_id, dc_id, run_windows, run_values in entries:
            for window, value in zip(run_windows, run_values):
                writer.writerow(
                    (
                        int(window),
                        server_id,
                        pool_id,
                        dc_id,
                        counter,
                        repr(float(value)),
                    )
                )
                rows += 1
    return rows


def import_store(path: PathLike) -> MetricStore:
    """Load a store previously written by :func:`export_store`.

    Rows are columnised per (pool, datacenter, counter) table in file
    order and appended through the store's batch path.
    """
    path = Path(path)
    store = MetricStore()
    grouped: dict = {}
    with _open_text(path, "r") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != _HEADER:
            raise ValueError(
                f"{path} is not a telemetry archive "
                f"(expected header {_HEADER}, got {header})"
            )
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(_HEADER):
                raise ValueError(f"{path}:{line_number}: malformed row {row!r}")
            window, server_id, pool_id, datacenter_id, counter, value = row
            key = (pool_id, datacenter_id, counter)
            bucket = grouped.get(key)
            if bucket is None:
                bucket = ([], [], [])
                grouped[key] = bucket
            bucket[0].append(int(window))
            bucket[1].append(store.intern_server(server_id))
            bucket[2].append(float(value))
    for (pool_id, datacenter_id, counter), (windows, indices, values) in grouped.items():
        store.record_columns(
            pool_id,
            datacenter_id,
            counter,
            np.asarray(windows, dtype=np.int64),
            np.asarray(indices, dtype=np.int64),
            np.asarray(values, dtype=float),
        )
    return store


def iter_rows(path: PathLike) -> Iterator[dict]:
    """Stream archive rows as dictionaries (for ad-hoc inspection)."""
    path = Path(path)
    with _open_text(path, "r") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            yield {
                "window": int(row["window"]),
                "server_id": row["server_id"],
                "pool_id": row["pool_id"],
                "datacenter_id": row["datacenter_id"],
                "counter": row["counter"],
                "value": float(row["value"]),
            }
