"""Request classes and mixes.

§II-A1 recounts that a MemCached-like micro-service's workload metric
was "noisy because the workload was measuring requests to multiple
tables.  After splitting workload into two metrics for each table, both
exhibited a linear relationship with CPU."  To reproduce that failure
mode and its fix we model workloads as a *mix* of request classes with
heterogeneous per-request processing costs.  When the mix proportions
drift over time, the aggregate request counter decorrelates from CPU;
per-class counters restore the linear relationship.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


def _frozen_array(values: Sequence[float], dtype=float) -> np.ndarray:
    """An immutable ndarray for per-mix constants shared across calls."""
    array = np.asarray(values, dtype=dtype)
    array.setflags(write=False)
    return array


@dataclass(frozen=True)
class RequestClass:
    """One class of requests (e.g. one table of a key-value store).

    ``cpu_cost`` is the percentage points of one server's CPU consumed
    per request/second of this class; ``bytes_per_request`` drives the
    network counters; ``latency_weight`` scales the class's contribution
    to queueing delay.
    """

    name: str
    cpu_cost: float
    bytes_per_request: float = 2_000.0
    latency_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("request class name must be non-empty")
        if self.cpu_cost < 0:
            raise ValueError("cpu_cost must be non-negative")
        if self.bytes_per_request < 0:
            raise ValueError("bytes_per_request must be non-negative")


@dataclass(frozen=True)
class RequestMix:
    """A set of request classes with baseline proportions.

    ``drift`` controls how far the mix wanders over time: 0 keeps the
    proportions fixed (aggregate counter stays linear with CPU), while
    larger values let the shares swing, reproducing the noisy-metric
    pathology that §II-A1's validation loop detects.
    """

    classes: Tuple[RequestClass, ...]
    proportions: Tuple[float, ...]
    drift: float = 0.0

    def __post_init__(self) -> None:
        if len(self.classes) != len(self.proportions):
            raise ValueError("classes and proportions must have equal length")
        if not self.classes:
            raise ValueError("a request mix needs at least one class")
        total = sum(self.proportions)
        if total <= 0:
            raise ValueError("proportions must sum to a positive value")
        if abs(total - 1.0) > 1e-9:
            normalised = tuple(p / total for p in self.proportions)
            object.__setattr__(self, "proportions", normalised)
        if not 0.0 <= self.drift < 1.0:
            raise ValueError("drift must be in [0, 1)")

    @classmethod
    def single(cls, name: str = "default", cpu_cost: float = 0.03) -> "RequestMix":
        """A one-class mix (the common, well-instrumented case)."""
        return cls(
            classes=(RequestClass(name=name, cpu_cost=cpu_cost),),
            proportions=(1.0,),
        )

    @property
    def class_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.classes)

    # ------------------------------------------------------------------
    # Per-mix constants, computed once and shared by every call.
    # ``cached_property`` stores into the instance ``__dict__`` directly,
    # which works on a frozen dataclass; the arrays are marked read-only
    # because ``shares_at``/``shares_block`` hand them out as-is on the
    # drift-free fast path.
    # ------------------------------------------------------------------
    @cached_property
    def proportions_array(self) -> np.ndarray:
        """Baseline proportions as an immutable float vector."""
        return _frozen_array(self.proportions)

    @cached_property
    def cpu_costs(self) -> np.ndarray:
        """Per-class ``cpu_cost`` in class order (immutable)."""
        return _frozen_array([c.cpu_cost for c in self.classes])

    @cached_property
    def bytes_per_request(self) -> np.ndarray:
        """Per-class ``bytes_per_request`` in class order (immutable)."""
        return _frozen_array([c.bytes_per_request for c in self.classes])

    @cached_property
    def latency_weights(self) -> np.ndarray:
        """Per-class ``latency_weight`` in class order (immutable)."""
        return _frozen_array([c.latency_weight for c in self.classes])

    @cached_property
    def _drift_phases(self) -> np.ndarray:
        return _frozen_array(np.arange(len(self.classes)) * 2.3)

    @cached_property
    def _drift_periods(self) -> np.ndarray:
        return _frozen_array(700.0 + 180.0 * np.arange(len(self.classes)))

    @cached_property
    def _by_name(self) -> Dict[str, RequestClass]:
        return {c.name: c for c in self.classes}

    def mean_cpu_cost(self) -> float:
        """Expected CPU cost per request under the baseline proportions."""
        return float(
            sum(c.cpu_cost * p for c, p in zip(self.classes, self.proportions))
        )

    def shares_at(
        self,
        window: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Class shares for one window, with slow sinusoidal drift.

        The drift is deterministic in ``window`` (plus optional jitter)
        so traces remain reproducible under a fixed seed.
        """
        base = self.proportions_array
        if self.drift == 0.0 or base.size == 1:
            return base
        # Each class share oscillates with its own period; shares are
        # renormalised so they remain a distribution.
        wobble = self.drift * np.sin(
            2.0 * np.pi * window / self._drift_periods + self._drift_phases
        )
        shares = np.clip(base * (1.0 + wobble), 1e-6, None)
        if rng is not None:
            shares *= rng.uniform(0.97, 1.03, size=shares.size)
        return shares / shares.sum()

    def shares_block(
        self,
        windows: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """(n_windows, n_classes) class-share matrix for a window block.

        Row ``i`` equals ``shares_at(windows[i], rng)`` float-for-float:
        the sinusoidal drift is evaluated on the whole window vector at
        once, and the jitter is one ``rng.uniform`` call for the whole
        block, which consumes the generator stream in exactly the order
        the per-window calls would (row-major, one row per window) —
        the property that keeps block=1 simulation bit-identical to
        per-window stepping.  Drift-free (or single-class) mixes draw
        nothing, like :meth:`shares_at`.
        """
        windows = np.asarray(windows, dtype=np.int64)
        base = self.proportions_array
        if self.drift == 0.0 or base.size == 1:
            return np.broadcast_to(base, (windows.size, base.size))
        wobble = self.drift * np.sin(
            2.0 * np.pi * windows[:, None] / self._drift_periods
            + self._drift_phases
        )
        shares = np.clip(base * (1.0 + wobble), 1e-6, None)
        if rng is not None:
            shares *= rng.uniform(0.97, 1.03, size=shares.shape)
        return shares / shares.sum(axis=1, keepdims=True)

    def split_volume(
        self,
        total_rps: float,
        window: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[str, float]:
        """Partition a total RPS across classes for one window."""
        shares = self.shares_at(window, rng)
        return {
            cls.name: float(total_rps * share)
            for cls, share in zip(self.classes, shares)
        }

    def cpu_for(self, class_rps: Dict[str, float]) -> float:
        """Ground-truth CPU (percentage points) for a per-class volume."""
        by_name = self._by_name
        total = 0.0
        for name, rps in class_rps.items():
            if name not in by_name:
                raise KeyError(f"unknown request class {name!r}")
            total += by_name[name].cpu_cost * rps
        return total
