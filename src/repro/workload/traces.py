"""Workload traces: realised per-window demand with noise.

A :class:`WorkloadTrace` is what actually hits a pool during
simulation: for every telemetry window, the total offered RPS and its
split across request classes.  Traces are produced from a
:class:`~repro.workload.diurnal.DiurnalPattern` plus multiplicative
noise, or recorded back out of a simulation for use as the "historical
data" the planner consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.workload.diurnal import DiurnalPattern
from repro.workload.request_mix import RequestMix


@dataclass(frozen=True)
class WorkloadTrace:
    """Realised workload: per-window totals and per-class volumes.

    ``class_volumes`` maps request-class name to an array aligned with
    ``totals``; the arrays sum (over classes) to ``totals``.
    """

    start_window: int
    totals: np.ndarray
    class_volumes: Dict[str, np.ndarray]

    def __post_init__(self) -> None:
        totals = np.asarray(self.totals, dtype=float)
        object.__setattr__(self, "totals", totals)
        volumes = {k: np.asarray(v, dtype=float) for k, v in self.class_volumes.items()}
        for name, arr in volumes.items():
            if arr.shape != totals.shape:
                raise ValueError(
                    f"class volume {name!r} misaligned with totals: "
                    f"{arr.shape} != {totals.shape}"
                )
        object.__setattr__(self, "class_volumes", volumes)

    def __len__(self) -> int:
        return int(self.totals.size)

    @property
    def windows(self) -> np.ndarray:
        return np.arange(self.start_window, self.start_window + len(self))

    @property
    def class_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.class_volumes))

    def total_at(self, window: int) -> float:
        idx = window - self.start_window
        if not 0 <= idx < len(self):
            raise IndexError(f"window {window} outside trace range")
        return float(self.totals[idx])

    def class_volume_at(self, window: int) -> Dict[str, float]:
        idx = window - self.start_window
        if not 0 <= idx < len(self):
            raise IndexError(f"window {window} outside trace range")
        return {name: float(arr[idx]) for name, arr in self.class_volumes.items()}

    def scaled(self, factor: float) -> "WorkloadTrace":
        """Uniformly scale the trace (e.g. to model a traffic surge)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return WorkloadTrace(
            start_window=self.start_window,
            totals=self.totals * factor,
            class_volumes={k: v * factor for k, v in self.class_volumes.items()},
        )

    def concat(self, other: "WorkloadTrace") -> "WorkloadTrace":
        """Concatenate a contiguous follow-on trace."""
        if other.start_window != self.start_window + len(self):
            raise ValueError("traces are not contiguous")
        if set(other.class_volumes) != set(self.class_volumes):
            raise ValueError("traces have different request classes")
        return WorkloadTrace(
            start_window=self.start_window,
            totals=np.concatenate([self.totals, other.totals]),
            class_volumes={
                k: np.concatenate([v, other.class_volumes[k]])
                for k, v in self.class_volumes.items()
            },
        )


def generate_trace(
    pattern: DiurnalPattern,
    mix: RequestMix,
    n_windows: int,
    rng: np.random.Generator,
    noise: float = 0.04,
    start_window: int = 0,
) -> WorkloadTrace:
    """Realise a trace from a demand pattern and request mix.

    ``noise`` is the coefficient of variation of multiplicative
    log-normal noise applied per window — real request volumes jitter
    around the diurnal mean ("instantaneous variations in workload",
    §II-A).
    """
    if n_windows < 0:
        raise ValueError("n_windows must be non-negative")
    if noise < 0:
        raise ValueError("noise must be non-negative")
    demand = pattern.demand_series(n_windows, start_window=start_window)
    if noise > 0 and n_windows > 0:
        sigma = np.sqrt(np.log1p(noise**2))
        jitter = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n_windows)
        totals = demand * jitter
    else:
        totals = demand.copy()

    class_volumes: Dict[str, np.ndarray] = {
        name: np.zeros(n_windows, dtype=float) for name in mix.class_names
    }
    for i in range(n_windows):
        split = mix.split_volume(totals[i], start_window + i, rng)
        for name, value in split.items():
            class_volumes[name][i] = value
    return WorkloadTrace(
        start_window=start_window,
        totals=totals,
        class_volumes=class_volumes,
    )
