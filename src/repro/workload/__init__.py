"""Workload substrate: diurnal demand, request mixes, traces, synthetics.

Replaces the proprietary production traffic of the paper with
generators that reproduce its load-bearing properties: diurnal cycles
with regional phase offsets, weekly modulation, request-class mixes
with heterogeneous processing costs, and the reproducible synthetic
workloads of methodology Step 3.
"""

from repro.workload.diurnal import DiurnalPattern, WINDOWS_PER_DAY
from repro.workload.request_mix import RequestClass, RequestMix
from repro.workload.traces import WorkloadTrace, generate_trace
from repro.workload.synthetic import (
    RampPlan,
    SyntheticWorkloadModel,
    WorkloadFidelityReport,
)

__all__ = [
    "DiurnalPattern",
    "WINDOWS_PER_DAY",
    "RequestClass",
    "RequestMix",
    "WorkloadTrace",
    "generate_trace",
    "RampPlan",
    "SyntheticWorkloadModel",
    "WorkloadFidelityReport",
]
