"""Step 3 — synthetic workload modelling.

"We create a synthetic workload to drive an offline system with the
same response characteristics as a production workload" (§II-C).  The
synthetic model must reproduce (a) the volume distribution and (b) the
request-class diversity of production, because QoS and resource usage
are proportional to request diversity.  Fidelity is then *verified*:
for the same volume of synthetic workload we must see the same QoS and
resource-usage values as production before the workload is trusted for
offline regression analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.workload.traces import WorkloadTrace


@dataclass(frozen=True)
class RampPlan:
    """A stress-test schedule: increasing load levels held for a time.

    §II-D: "We make small workload increments over time to obtain a
    broad set of data for latency and resource utilization."
    """

    levels: Tuple[float, ...]
    windows_per_level: int

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("ramp needs at least one level")
        if any(level < 0 for level in self.levels):
            raise ValueError("ramp levels must be non-negative")
        if self.windows_per_level < 1:
            raise ValueError("windows_per_level must be >= 1")

    @classmethod
    def linear(
        cls,
        start_rps: float,
        stop_rps: float,
        n_levels: int,
        windows_per_level: int = 5,
    ) -> "RampPlan":
        """Evenly spaced levels from start to stop inclusive."""
        if n_levels < 2:
            raise ValueError("need at least two levels")
        levels = tuple(np.linspace(start_rps, stop_rps, n_levels))
        return cls(levels=levels, windows_per_level=windows_per_level)

    @property
    def total_windows(self) -> int:
        return len(self.levels) * self.windows_per_level

    def level_at(self, step: int) -> float:
        """Offered load at ramp step ``step`` (0-based window offset)."""
        if not 0 <= step < self.total_windows:
            raise IndexError(f"step {step} outside ramp")
        return self.levels[step // self.windows_per_level]


class SyntheticWorkloadModel:
    """Fits production trace statistics and replays reproducible traces.

    The model captures per-class volume shares (mean and spread) and the
    total-volume distribution.  ``generate`` draws a reproducible trace
    from the fitted distributions; ``generate_ramp`` produces the
    stress-test schedule used by offline validation (Step 4).
    """

    def __init__(self) -> None:
        self._fitted = False
        self._class_names: Tuple[str, ...] = ()
        self._mean_shares: Optional[np.ndarray] = None
        self._share_std: Optional[np.ndarray] = None
        self._volume_mean: float = 0.0
        self._volume_std: float = 0.0
        self._volume_range: Tuple[float, float] = (0.0, 0.0)

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def class_names(self) -> Tuple[str, ...]:
        return self._class_names

    @property
    def volume_range(self) -> Tuple[float, float]:
        return self._volume_range

    def fit(self, production: WorkloadTrace) -> "SyntheticWorkloadModel":
        """Learn volume and mix statistics from a production trace."""
        if len(production) == 0:
            raise ValueError("cannot fit on an empty trace")
        totals = production.totals
        self._class_names = production.class_names
        shares = np.zeros((len(production), len(self._class_names)), dtype=float)
        safe_totals = np.where(totals > 0, totals, 1.0)
        for j, name in enumerate(self._class_names):
            shares[:, j] = production.class_volumes[name] / safe_totals
        self._mean_shares = shares.mean(axis=0)
        self._share_std = shares.std(axis=0)
        self._volume_mean = float(totals.mean())
        self._volume_std = float(totals.std())
        self._volume_range = (float(totals.min()), float(totals.max()))
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("synthetic workload model has not been fitted")

    def _split(self, totals: np.ndarray, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        assert self._mean_shares is not None and self._share_std is not None
        n = totals.size
        volumes: Dict[str, np.ndarray] = {}
        shares = rng.normal(
            loc=self._mean_shares,
            scale=np.maximum(self._share_std, 1e-9),
            size=(n, self._mean_shares.size),
        )
        shares = np.clip(shares, 1e-9, None)
        shares /= shares.sum(axis=1, keepdims=True)
        for j, name in enumerate(self._class_names):
            volumes[name] = totals * shares[:, j]
        return volumes

    def generate(
        self,
        n_windows: int,
        rng: np.random.Generator,
        start_window: int = 0,
    ) -> WorkloadTrace:
        """Draw a synthetic trace matching the fitted distributions."""
        self._require_fitted()
        if n_windows < 0:
            raise ValueError("n_windows must be non-negative")
        totals = rng.normal(self._volume_mean, max(self._volume_std, 1e-9), size=n_windows)
        totals = np.clip(totals, 0.0, None)
        return WorkloadTrace(
            start_window=start_window,
            totals=totals,
            class_volumes=self._split(totals, rng),
        )

    def generate_ramp(
        self,
        ramp: RampPlan,
        rng: np.random.Generator,
        start_window: int = 0,
        noise: float = 0.01,
    ) -> WorkloadTrace:
        """Stress-test trace: the ramp levels with fitted request mix.

        Identical (seeded) ramps drive the baseline and changed pools in
        Step 4, so curve differences are attributable to the change.
        """
        self._require_fitted()
        totals = np.array(
            [ramp.level_at(step) for step in range(ramp.total_windows)], dtype=float
        )
        if noise > 0:
            totals = totals * rng.normal(1.0, noise, size=totals.size)
            totals = np.clip(totals, 0.0, None)
        return WorkloadTrace(
            start_window=start_window,
            totals=totals,
            class_volumes=self._split(totals, rng),
        )


@dataclass(frozen=True)
class WorkloadFidelityReport:
    """Comparison of a synthetic trace against its production source.

    Step 3 requires "for the same volume of synthetic workload we see
    the same QoS and resource usage values"; the first-order check is
    that the *workload itself* matches in volume and mix.  Response
    fidelity (CPU/latency curves) is checked by
    :mod:`repro.core.regression_analysis` using simulator runs.
    """

    volume_mean_error: float
    volume_std_error: float
    max_share_error: float
    passed: bool

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"synthetic-workload fidelity: {status} "
            f"(volume mean err {self.volume_mean_error:.1%}, "
            f"std err {self.volume_std_error:.1%}, "
            f"worst class-share err {self.max_share_error:.3f})"
        )


def compare_traces(
    production: WorkloadTrace,
    synthetic: WorkloadTrace,
    volume_tolerance: float = 0.1,
    share_tolerance: float = 0.05,
) -> WorkloadFidelityReport:
    """Score a synthetic trace against production statistics."""
    if len(production) == 0 or len(synthetic) == 0:
        raise ValueError("cannot compare empty traces")
    if set(production.class_names) != set(synthetic.class_names):
        raise ValueError("traces have different request classes")
    prod_mean = float(production.totals.mean())
    syn_mean = float(synthetic.totals.mean())
    prod_std = float(production.totals.std())
    syn_std = float(synthetic.totals.std())
    mean_err = abs(syn_mean - prod_mean) / max(prod_mean, 1e-9)
    std_err = abs(syn_std - prod_std) / max(prod_std, 1e-9)

    max_share_err = 0.0
    prod_totals = np.where(production.totals > 0, production.totals, 1.0)
    syn_totals = np.where(synthetic.totals > 0, synthetic.totals, 1.0)
    for name in production.class_names:
        prod_share = float((production.class_volumes[name] / prod_totals).mean())
        syn_share = float((synthetic.class_volumes[name] / syn_totals).mean())
        max_share_err = max(max_share_err, abs(prod_share - syn_share))

    passed = (
        mean_err <= volume_tolerance
        and std_err <= max(volume_tolerance * 2, 0.25)
        and max_share_err <= share_tolerance
    )
    return WorkloadFidelityReport(
        volume_mean_error=mean_err,
        volume_std_error=std_err,
        max_share_error=max_share_err,
        passed=passed,
    )
