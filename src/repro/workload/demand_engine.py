"""Columnar demand engine: blocks of offered demand as one tensor pass.

PRs 1-5 made telemetry *emission* columnar; demand generation stayed
per-window Python — every window re-scanned all surge/outage events and
rebuilt per-deployment dicts.  This module computes the offered demand
of a whole block of windows as dense arrays:

* the diurnal curves are evaluated on the window vector
  (:meth:`~repro.workload.diurnal.DiurnalPattern.demand_block`);
* surge factors come from per-``(pool, datacenter)`` interval lists
  precomputed once per event-set, multiplied in event order;
* outage failover is a masked, row-normalised redistribution per pool
  over the ``(n_windows, n_deployments)`` base matrix.

The same precomputed intervals back the *scalar* ``surge_factor`` /
``outage_active`` lookups, so the per-window engines stop scanning the
full event list each window too.

Every array expression mirrors the original per-window scalar code term
for term, and reductions are per-row (window-count independent), so a
one-window block equals the old per-window computation float-for-float
— the simulator's ``offered_demand`` is now literally the one-window
slice of :meth:`DemandEngine.compute_demand_block`, which makes the
per-window and blocked demand paths identical by construction.

Pure workload-layer module: the fleet, outage and surge objects are
duck-typed (``deployments()``, ``pattern``, ``datacenter_id``,
``start_window`` …) to keep the dependency direction cluster -> workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: One deployment's identity: (pool_id, datacenter_id).
DeploymentKey = Tuple[str, str]


@dataclass(frozen=True)
class DemandBlock:
    """Noise-free offered demand for a block of windows.

    ``base[i, j]`` is the post-surge, post-failover demand of deployment
    ``keys[j]`` at ``windows[i]`` — the blocked equivalent of one
    ``Simulator.offered_demand`` dict per window.
    """

    windows: np.ndarray
    keys: Tuple[DeploymentKey, ...]
    base: np.ndarray
    _columns: Dict[DeploymentKey, int]

    def column(self, pool_id: str, datacenter_id: str) -> np.ndarray:
        """The per-window demand vector of one deployment."""
        return self.base[:, self._columns[(pool_id, datacenter_id)]]

    def row_dict(self, i: int = 0) -> Dict[DeploymentKey, float]:
        """Row ``i`` in the legacy dict form (per-window engines)."""
        row = self.base[i]
        return {key: float(row[j]) for j, key in enumerate(self.keys)}


class DemandEngine:
    """Computes offered demand in blocks for one fleet + event set.

    Owns lazily-rebuilt interval caches over the simulator's (growing)
    outage and surge lists: per datacenter the ``(start, end)`` outage
    intervals, per ``(pool, datacenter)`` the ``(start, end, factor)``
    surge intervals.  The caches are invalidated whenever the event
    lists grow, so ``add_outage``/``add_surge`` mid-run just work.
    """

    def __init__(self, fleet, outages: Sequence, surges: Sequence) -> None:
        self._fleet = fleet
        self._outages = outages
        self._surges = surges
        self._version: Tuple[int, int] = (-1, -1)
        self._outage_intervals: Dict[str, List[Tuple[int, int]]] = {}
        self._surge_intervals: Dict[DeploymentKey, List[Tuple[int, int, float]]] = {}

    # ------------------------------------------------------------------
    # Interval caches
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        version = (len(self._outages), len(self._surges))
        if version == self._version:
            return
        outage_intervals: Dict[str, List[Tuple[int, int]]] = {}
        for outage in self._outages:
            outage_intervals.setdefault(outage.datacenter_id, []).append(
                (outage.start_window, outage.start_window + outage.duration_windows)
            )
        # Surges are keyed per deployment so lookups never filter; a
        # pool_id=None surge lands in every pool's interval list for its
        # datacenter.  List order == add order == the factor multiply
        # order of the original per-window scan.
        surge_intervals: Dict[DeploymentKey, List[Tuple[int, int, float]]] = {}
        for deployment in self._fleet.deployments():
            key = (deployment.pool_id, deployment.datacenter_id)
            intervals = [
                (surge.start_window, surge.start_window + surge.duration_windows,
                 surge.factor)
                for surge in self._surges
                if surge.datacenter_id == key[1]
                and (surge.pool_id is None or surge.pool_id == key[0])
            ]
            if intervals:
                surge_intervals[key] = intervals
        self._outage_intervals = outage_intervals
        self._surge_intervals = surge_intervals
        self._version = version

    # ------------------------------------------------------------------
    # Scalar lookups (per-window engines)
    # ------------------------------------------------------------------
    def outage_active(self, datacenter_id: str, window: int) -> bool:
        """Whether any outage covers ``datacenter_id`` at ``window``."""
        self._refresh()
        intervals = self._outage_intervals.get(datacenter_id)
        if not intervals:
            return False
        return any(start <= window < end for start, end in intervals)

    def surge_factor(self, pool_id: str, datacenter_id: str, window: int) -> float:
        """Combined surge multiplier for one deployment at one window."""
        self._refresh()
        intervals = self._surge_intervals.get((pool_id, datacenter_id))
        factor = 1.0
        if intervals:
            for start, end, surge_factor in intervals:
                if start <= window < end:
                    factor *= surge_factor
        return factor

    # ------------------------------------------------------------------
    # Blocked lookups
    # ------------------------------------------------------------------
    def outage_mask_block(
        self, datacenter_id: str, windows: np.ndarray
    ) -> np.ndarray:
        """Boolean per-window outage mask for one datacenter."""
        self._refresh()
        windows = np.asarray(windows, dtype=np.int64)
        mask = np.zeros(windows.size, dtype=bool)
        for start, end in self._outage_intervals.get(datacenter_id, ()):
            mask |= (windows >= start) & (windows < end)
        return mask

    def surge_factor_block(
        self, pool_id: str, datacenter_id: str, windows: np.ndarray
    ) -> np.ndarray:
        """Per-window surge multiplier vector for one deployment.

        Factors multiply in event-list order, exactly as the scalar
        per-window scan multiplied them.
        """
        self._refresh()
        windows = np.asarray(windows, dtype=np.int64)
        factors = np.ones(windows.size)
        for start, end, factor in self._surge_intervals.get(
            (pool_id, datacenter_id), ()
        ):
            factors[(windows >= start) & (windows < end)] *= factor
        return factors

    # ------------------------------------------------------------------
    # The block tensor
    # ------------------------------------------------------------------
    def compute_demand_block(self, windows: np.ndarray) -> DemandBlock:
        """Noise-free offered demand for every deployment and window.

        Diurnal curve on the window vector, surge factors from the
        interval cache, then per-pool outage failover as a masked
        row-normalised redistribution.  Row ``i`` equals the old scalar
        ``offered_demand(windows[i])`` float-for-float: all reductions
        run along the deployment axis (window-count independent), and
        adding a survivor share of zero is an IEEE no-op for the
        non-negative demands involved.
        """
        self._refresh()
        windows = np.asarray(windows, dtype=np.int64)
        n_windows = windows.size

        deployments = list(self._fleet.deployments())
        keys: List[DeploymentKey] = []
        columns: List[np.ndarray] = []
        pool_columns: Dict[str, List[int]] = {}
        for j, deployment in enumerate(deployments):
            key = (deployment.pool_id, deployment.datacenter_id)
            pattern = deployment.pattern
            demand_block = getattr(pattern, "demand_block", None)
            if demand_block is not None:
                demand = np.array(demand_block(windows), dtype=float)
            else:
                # Duck-typed patterns (trace replay, ramps) only expose
                # the scalar demand_at.
                demand = np.array(
                    [float(pattern.demand_at(int(w))) for w in windows]
                )
            surge_intervals = self._surge_intervals.get(key)
            if surge_intervals:
                demand *= self.surge_factor_block(key[0], key[1], windows)
            keys.append(key)
            columns.append(demand)
            pool_columns.setdefault(deployment.pool_id, []).append(j)

        base = (
            np.stack(columns, axis=1)
            if columns
            else np.zeros((n_windows, 0))
        )

        if self._outage_intervals:
            self._apply_failover(base, windows, keys, pool_columns)

        return DemandBlock(
            windows=windows,
            keys=tuple(keys),
            base=base,
            _columns={key: j for j, key in enumerate(keys)},
        )

    def _apply_failover(
        self,
        base: np.ndarray,
        windows: np.ndarray,
        keys: Sequence[DeploymentKey],
        pool_columns: Dict[str, List[int]],
    ) -> None:
        """Redistribute failed datacenters' demand within each pool.

        Vector transcription of the scalar failover loop: failed
        deployments drop to zero; their summed demand is split across
        the pool's surviving datacenters proportionally to the
        survivors' own demand, or evenly when the survivor total is
        zero; with no survivors (or nothing displaced) the demand is
        simply lost.
        """
        no_outage = np.zeros(windows.size, dtype=bool)
        outage_masks = {
            dc_id: self.outage_mask_block(dc_id, windows)
            for dc_id in self._outage_intervals
        }
        for cols in pool_columns.values():
            failed = np.stack(
                [outage_masks.get(keys[j][1], no_outage) for j in cols],
                axis=1,
            )
            if not failed.any():
                continue
            sub = base[:, cols]
            displaced = np.where(failed, sub, 0.0).sum(axis=1)
            survivor_vals = np.where(failed, 0.0, sub)
            survivor_total = survivor_vals.sum(axis=1)
            n_survivors = (~failed).sum(axis=1)

            share = np.zeros_like(sub)
            positive = survivor_total > 0.0
            np.divide(
                survivor_vals,
                survivor_total[:, None],
                out=share,
                where=positive[:, None],
            )
            even = (~positive) & (n_survivors > 0)
            if even.any():
                even_share = np.where(
                    even[:, None] & ~failed,
                    1.0 / np.maximum(n_survivors, 1)[:, None],
                    0.0,
                )
                share = np.where(even[:, None] & ~failed, even_share, share)

            redistribute = (displaced > 0.0)[:, None] & ~failed
            added = np.where(redistribute, displaced[:, None] * share, 0.0)
            base[:, cols] = np.where(failed, 0.0, sub + added)
