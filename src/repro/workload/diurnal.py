"""Diurnal and weekly demand patterns.

"Diurnal global online service workloads cause individual datacenters
to periodically run out of capacity while datacenters on the opposite
side of the world are underutilized" (§I).  The generator encodes:

* a 24-hour fundamental plus a second harmonic (real service traffic
  has an asymmetric daily shape — a slow morning ramp and a sharper
  evening peak — which a single sinusoid cannot express);
* a weekly modulation (weekend dips);
* a per-region phase shift derived from the datacenter's timezone, so
  peaks rotate around the globe;
* optional long-term linear growth, the trend capacity planners
  forecast against.

Time is measured in 120-second telemetry windows throughout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.counters import WINDOW_SECONDS

#: Number of telemetry windows in one day (720 at 120 s windows).
WINDOWS_PER_DAY: int = (24 * 3600) // WINDOW_SECONDS

#: Number of telemetry windows in one week.
WINDOWS_PER_WEEK: int = 7 * WINDOWS_PER_DAY


@dataclass(frozen=True)
class DiurnalPattern:
    """Deterministic demand shape for one pool in one datacenter.

    Parameters
    ----------
    base_rps:
        Mean total pool demand in requests/second.
    daily_amplitude:
        Fractional swing of the 24-h fundamental (0.5 means the daily
        peak is ~1.5x and the trough ~0.5x the base).
    second_harmonic:
        Fractional amplitude of the 12-h harmonic shaping asymmetry.
    timezone_offset_hours:
        Region's offset from UTC; shifts the local peak so that a
        global fleet sees rotating peaks.
    weekend_factor:
        Multiplier applied on days 5 and 6 of each week.
    weekly_growth:
        Fractional demand growth per week (compounding linearly).
    peak_hour_local:
        Local hour of day at which the fundamental peaks.
    """

    base_rps: float
    daily_amplitude: float = 0.45
    second_harmonic: float = 0.12
    timezone_offset_hours: float = 0.0
    weekend_factor: float = 0.8
    weekly_growth: float = 0.0
    peak_hour_local: float = 20.0

    def __post_init__(self) -> None:
        if self.base_rps <= 0:
            raise ValueError("base_rps must be positive")
        if not 0.0 <= self.daily_amplitude < 1.0:
            raise ValueError("daily_amplitude must be in [0, 1)")
        if self.weekend_factor <= 0:
            raise ValueError("weekend_factor must be positive")

    def demand_at(self, window: int) -> float:
        """Total pool demand (RPS) at a given telemetry window."""
        day_fraction = (window % WINDOWS_PER_DAY) / WINDOWS_PER_DAY
        local_hour = (day_fraction * 24.0 + self.timezone_offset_hours) % 24.0
        phase = 2.0 * math.pi * (local_hour - self.peak_hour_local) / 24.0
        shape = (
            1.0
            + self.daily_amplitude * math.cos(phase)
            + self.second_harmonic * math.cos(2.0 * phase + 0.7)
        )
        day_of_week = (window // WINDOWS_PER_DAY) % 7
        if day_of_week >= 5:
            shape *= self.weekend_factor
        week = window / WINDOWS_PER_WEEK
        growth = 1.0 + self.weekly_growth * week
        return max(self.base_rps * shape * growth, 0.0)

    def demand_block(self, windows: np.ndarray) -> np.ndarray:
        """Vector of :meth:`demand_at` over an arbitrary window array.

        The blocked demand engine's entry point: one evaluation of the
        diurnal curve per window, as array expressions.  Every operation
        mirrors :meth:`demand_at` term for term (and ``np.cos`` agrees
        bitwise with ``math.cos``), so each element equals the scalar
        evaluation float-for-float — the property the block=1
        bit-identity guarantee of the simulator rests on.
        """
        windows = np.asarray(windows, dtype=np.int64)
        day_fraction = (windows % WINDOWS_PER_DAY) / WINDOWS_PER_DAY
        local_hour = (day_fraction * 24.0 + self.timezone_offset_hours) % 24.0
        phase = 2.0 * math.pi * (local_hour - self.peak_hour_local) / 24.0
        shape = (
            1.0
            + self.daily_amplitude * np.cos(phase)
            + self.second_harmonic * np.cos(2.0 * phase + 0.7)
        )
        day_of_week = (windows // WINDOWS_PER_DAY) % 7
        shape = np.where(day_of_week >= 5, shape * self.weekend_factor, shape)
        week = windows / WINDOWS_PER_WEEK
        growth = 1.0 + self.weekly_growth * week
        return np.maximum(self.base_rps * shape * growth, 0.0)

    def demand_series(self, n_windows: int, start_window: int = 0) -> np.ndarray:
        """Vector of demand over ``n_windows`` consecutive windows."""
        if n_windows < 0:
            raise ValueError("n_windows must be non-negative")
        return self.demand_block(
            np.arange(start_window, start_window + n_windows, dtype=np.int64)
        )

    def daily_peak(self) -> float:
        """Peak demand over one (weekday) day, by direct evaluation."""
        return float(self.demand_series(WINDOWS_PER_DAY).max())

    def daily_trough(self) -> float:
        """Trough demand over one (weekday) day."""
        return float(self.demand_series(WINDOWS_PER_DAY).min())

    def with_base(self, base_rps: float) -> "DiurnalPattern":
        """Copy of this pattern with a different base demand."""
        return DiurnalPattern(
            base_rps=base_rps,
            daily_amplitude=self.daily_amplitude,
            second_harmonic=self.second_harmonic,
            timezone_offset_hours=self.timezone_offset_hours,
            weekend_factor=self.weekend_factor,
            weekly_growth=self.weekly_growth,
            peak_hour_local=self.peak_hour_local,
        )
