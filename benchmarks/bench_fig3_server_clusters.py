"""Fig 3 — per-server (5th pct, 95th pct) CPU clusters.

The paper's scatter shows tight clusters per datacenter, and one pool
splitting into two clusters that turned out to be two hardware
generations.  The bench regenerates both situations and checks that
the grouping stage draws the same conclusions automatically.
"""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.hardware import GENERATION_2014, GENERATION_2017
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.grouping import identify_server_groups
from repro.core.report import render_table


@pytest.fixture(scope="module")
def fig3_sims():
    uniform_fleet = build_single_pool_fleet(
        "F", n_datacenters=2, servers_per_deployment=20, seed=121
    )
    uniform = Simulator(
        uniform_fleet, seed=121,
        config=SimulationConfig(apply_availability_policies=False),
    )
    uniform.run_days(1)

    mixed_fleet = build_single_pool_fleet(
        "F", n_datacenters=1, servers_per_deployment=24, seed=123,
        hardware_mix={GENERATION_2014: 0.5, GENERATION_2017: 0.5},
    )
    mixed = Simulator(
        mixed_fleet, seed=123,
        config=SimulationConfig(apply_availability_policies=False),
    )
    mixed.run_days(1)
    return uniform, mixed


def test_fig3_uniform_pool_tight_cluster(benchmark, fig3_sims):
    uniform, _mixed = fig3_sims

    def group():
        return {
            dc: identify_server_groups(uniform.store, "F", dc)
            for dc in ("DC1", "DC2")
        }

    reports = benchmark(group)

    rows = []
    for dc, report in reports.items():
        for g in report.groups:
            rows.append([dc, g.group_index, g.size, f"{g.center_p5:.1f}", f"{g.center_p95:.1f}"])
    print()
    print(render_table(
        ["DC", "group", "servers", "p5 CPU", "p95 CPU"],
        rows, title="Fig 3: per-DC server clusters (uniform hardware)",
    ))

    for dc, report in reports.items():
        # One tight cluster per datacenter, with a consistent daily
        # upper and lower bound across the pool.
        assert report.is_uniform, f"{dc}: expected a single cluster"
        spread_p95 = report.points[:, 1].std()
        assert spread_p95 < report.points[:, 1].mean() * 0.25


def test_fig3_mixed_hardware_two_clusters(benchmark, fig3_sims):
    _uniform, mixed = fig3_sims

    report = benchmark(
        lambda: identify_server_groups(mixed.store, "F", "DC1")
    )

    rows = [
        [g.group_index, g.size, f"{g.center_p5:.1f}", f"{g.center_p95:.1f}"]
        for g in report.groups
    ]
    print()
    print(render_table(
        ["group", "servers", "p5 CPU", "p95 CPU"],
        rows, title="Fig 3: two-generation pool splits into two clusters",
    ))

    assert report.n_groups == 2
    centers = sorted(g.center_p95 for g in report.groups)
    # "All servers in the less utilized range are newer and more
    # powerful": the cool cluster sits near cpu_scale (0.65) of the hot
    # one, up to the shared idle offset.
    assert centers[0] < centers[1] * 0.85
    sizes = sorted(g.size for g in report.groups)
    assert sizes == [12, 12]
