"""§I / §III headline fleet statistics.

The paper's contribution list includes a fleet analysis with:

* well-managed servers need only 2 % downtime, yet 17 % was the
  observed average (availability 83 %);
* CPU usage averaged 23 % for the servers studied, with 80 % using
  less than 30 % CPU;
* CPU spikes are rare — only 15 % of servers had a spike above 40 %;
* global utilization ~23 % implies a theoretical ~4x efficiency bound.
"""

import pytest

from repro.analysis.utilization import study_fleet_utilization
from repro.core.availability import study_fleet_availability
from repro.core.report import render_table


def test_headline_fleet_stats(benchmark, paper_store):
    def analyze():
        return (
            study_fleet_utilization(paper_store),
            study_fleet_availability(paper_store),
        )

    utilization, availability = benchmark.pedantic(
        analyze, rounds=1, iterations=1
    )

    mean_cpu = utilization.global_mean_utilization
    below_30 = utilization.fraction_of_servers_below(30.0)
    spiking = utilization.fraction_of_servers_spiking_above(40.0)
    downtime = 1.0 - availability.overall_mean
    infra = availability.infrastructure_overhead

    print()
    print(render_table(
        ["statistic", "paper", "measured"],
        [
            ["mean CPU utilization", "23%", f"{mean_cpu:.0f}%"],
            ["servers below 30% CPU", "80%", f"{below_30:.0%}"],
            ["servers spiking >40%", "15%", f"{spiking:.0%}"],
            ["average downtime", "17%", f"{downtime:.0%}"],
            ["well-managed downtime", "2%", f"{infra:.1%}"],
            ["theoretical efficiency", "~4x", f"{utilization.theoretical_efficiency_factor:.1f}x"],
        ],
        title="Headline fleet statistics (paper vs measured)",
    ))

    # Bands, not exact values: the shapes the paper's argument needs.
    assert 8.0 < mean_cpu < 35.0          # cold fleet
    assert below_30 > 0.6                 # most servers underutilized
    assert spiking < 0.6                  # spikes are a minority
    assert 0.03 < downtime < 0.25         # far above the 2 % floor
    assert infra == pytest.approx(0.02, abs=0.015)
    assert utilization.theoretical_efficiency_factor > 2.5
