"""Ablation — RANSAC vs plain OLS for the latency fits (§II-B2).

The paper fits Eq. 1 with "robust regressions (RANSAC)" because
production data mixes in deployment- and traffic-shift windows that
are not representative of steady-state response (visible as the
stragglers in Fig 7's third iteration).  This bench contaminates the
latency telemetry the way production does and measures how far OLS
drifts while RANSAC holds.
"""

import numpy as np
import pytest

from repro.core.report import render_table
from repro.stats.ransac import RansacRegressor
from repro.stats.regression import fit_polynomial


def _latency_data(rng, n=400, outlier_fraction=0.25):
    """Ground truth: the paper's pool B quadratic, plus deployment spikes."""
    x = rng.uniform(100.0, 600.0, n)
    truth = 4.03e-5 * x**2 - 0.031 * x + 36.68
    y = truth + rng.normal(0.0, 0.4, n)
    n_out = int(outlier_fraction * n)
    idx = rng.choice(n, size=n_out, replace=False)
    # Deployment windows: drained caches and restarts inflate latency.
    y[idx] += rng.uniform(15.0, 45.0, n_out)
    return x, y


def _forecast_error(model, x_eval=700.0):
    truth = 4.03e-5 * x_eval**2 - 0.031 * x_eval + 36.68
    return abs(model.predict_scalar(x_eval) - truth)


def test_ablation_ransac_vs_ols(benchmark):
    rng = np.random.default_rng(191)
    x, y = _latency_data(rng)

    def fit_both():
        ols = fit_polynomial(x, y, degree=2)
        ransac = RansacRegressor(degree=2, rng=np.random.default_rng(5)).fit(x, y)
        return ols, ransac

    ols, ransac = benchmark(fit_both)
    ols_err = _forecast_error(ols)
    ransac_err = _forecast_error(ransac.model)

    print()
    print(render_table(
        ["fit", "forecast err @700 RPS (ms)", "inliers"],
        [
            ["OLS", f"{ols_err:.2f}", "all"],
            ["RANSAC", f"{ransac_err:.2f}",
             f"{ransac.n_inliers}/{ransac.n_inliers + ransac.n_outliers}"],
        ],
        title="Ablation: quadratic latency fit under deployment outliers",
    ))

    # RANSAC's extrapolated forecast is materially better.
    assert ransac_err < 1.5
    assert ols_err > 2.0 * ransac_err
    assert ols_err > 1.0
    # And it actually rejected the contaminated windows.
    assert ransac.n_outliers >= 0.5 * 0.25 * x.size


def test_ablation_ransac_no_cost_on_clean_data(benchmark):
    """On clean data RANSAC must not be worse than OLS."""
    rng = np.random.default_rng(193)
    x = rng.uniform(100.0, 600.0, 400)
    y = 4.03e-5 * x**2 - 0.031 * x + 36.68 + rng.normal(0.0, 0.4, 400)

    def fit_both():
        ols = fit_polynomial(x, y, degree=2)
        ransac = RansacRegressor(degree=2, rng=np.random.default_rng(5)).fit(x, y)
        return ols, ransac

    ols, ransac = benchmark(fit_both)
    assert _forecast_error(ransac.model) < _forecast_error(ols) + 0.5
