"""Ablation — geo traffic shifting vs per-region provisioning.

§I's motivating observation: "individual datacenters periodically run
out of capacity while datacenters on the opposite side of the world
are underutilized", and the related-work claim that moving requests to
existing capacity beats moving capacity to requests.  The bench
quantifies the capacity saved when a bounded slice of each region's
traffic may be served remotely, on real simulated demand with peaks
rotating through nine timezones.
"""

import numpy as np
import pytest

from repro.core.curves import fit_qos_model
from repro.core.report import render_table
from repro.core.traffic_shift import TrafficShiftAnalysis
from repro.telemetry.counters import Counter


def test_ablation_geo_traffic_shift(benchmark, paper_store):
    pool = "E"  # the proxy/CDN tier — the natural place to shift traffic
    datacenters = paper_store.datacenters_for_pool(pool)
    demand = {
        dc: paper_store.pool_window_aggregate(
            pool, Counter.REQUESTS.value, datacenter_id=dc, reducer="sum"
        ).values
        for dc in datacenters
    }
    qos_model = fit_qos_model(
        paper_store, pool, datacenter_id=datacenters[0],
        rng=np.random.default_rng(0),
    )
    max_rps = qos_model.max_rps_within(12.5) * 0.9

    def analyze():
        return {
            fraction: TrafficShiftAnalysis(max_remote_fraction=fraction).analyze(
                demand, max_rps_per_server=max_rps
            )
            for fraction in (0.0, 0.1, 0.25, 0.5)
        }

    reports = benchmark.pedantic(analyze, rounds=1, iterations=1)

    rows = [
        [
            f"{fraction:.0%}",
            f"{report.required_capacity_before:.0f}",
            f"{report.required_capacity_after:.0f}",
            f"{report.capacity_savings:.0%}",
            f"{report.shifted_fraction_mean:.1%}",
        ]
        for fraction, report in reports.items()
    ]
    print()
    print(render_table(
        ["remote budget", "servers before", "servers after", "savings", "traffic moved"],
        rows,
        title="Ablation: follow-the-sun traffic shifting (pool E, 9 DCs)",
    ))

    # No remote budget, no savings; growing budget grows savings.
    assert reports[0.0].capacity_savings <= 0.05
    assert reports[0.25].capacity_savings > 0.05
    assert reports[0.5].capacity_savings >= reports[0.1].capacity_savings - 0.02
    # Everything stays feasible (post-shift peak utilization <= 1).
    for report in reports.values():
        assert report.peak_utilization_after <= 1.0 + 1e-6
