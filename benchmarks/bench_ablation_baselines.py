"""Ablation — the black-box plan vs the three baseline approaches.

The paper's §I argument, quantified on one overprovisioned pool:

* **static peak + fixed headroom** (industry default) allocates the
  most capacity;
* **queuing theory (M/M/c)** can be lean, but a single deployment that
  changes per-request cost silently invalidates its hand-maintained
  service-time parameter (§I "quickly invalidated as the system
  evolves");
* **reactive autoscaling** needs less steady-state capacity but misses
  SLOs during diurnal ramps once realistic provisioning lag is
  modelled (§I's second objection);
* the **black-box plan** matches the lean capacity while keeping the
  measured QoS inside the SLO.
"""

import numpy as np
import pytest

from repro.baselines.autoscaler import ReactiveAutoscaler
from repro.baselines.queuing import MMcPlanner
from repro.baselines.static_peak import StaticPeakPlanner
from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.headroom import HeadroomPlanner
from repro.core.report import render_table
from repro.core.slo import QoSRequirement
from repro.telemetry.counters import Counter


@pytest.fixture(scope="module")
def world():
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=40, seed=181
    )
    sim = Simulator(
        fleet, seed=181,
        config=SimulationConfig(apply_availability_policies=False),
    )
    sim.run_days(2)
    demand = sim.store.pool_window_aggregate(
        "B", Counter.REQUESTS.value, datacenter_id="DC1", reducer="sum"
    )
    return sim, demand


def test_ablation_planner_vs_baselines(benchmark, world):
    sim, demand = world
    qos = QoSRequirement(latency_p95_ms=36.0)

    def plan_everything():
        blackbox = HeadroomPlanner(
            sim.store, survive_dc_loss=False
        ).plan_pool("B", qos)
        # The static planner sizes per its conservative utilization
        # target (the catalogue's provisioning habit) plus 50 % fudge.
        static = StaticPeakPlanner(
            rps_per_server_at_target=390.0, headroom_factor=1.5
        ).required_servers(demand.values)
        # The queuing planner with a *freshly measured* service time.
        mmc = MMcPlanner(
            service_time_s=0.020, target_latency_s=0.036,
            requests_per_server_slot=16,
        ).required_servers(float(np.percentile(demand.values, 99.5)))
        return blackbox, static, mmc

    blackbox, static, mmc = benchmark.pedantic(
        plan_everything, rounds=1, iterations=1
    )

    # Reactive autoscaler replay with realistic lag.
    autoscaler = ReactiveAutoscaler(
        target_rps_per_server=600.0,  # chase high utilization (its point)
        max_rps_per_server=690.0,     # the SLO-derived per-server limit
        provisioning_lag_windows=30,  # ~1 h of startup, JIT, cache priming
        max_step_servers=2,           # realistic allocation throughput
    )
    outcome = autoscaler.replay(demand.values)

    rows = [
        ["black-box plan (ours)", blackbox.planned_servers, "meets SLO (verified below)"],
        ["static peak + 50%", static, "meets SLO, wasteful"],
        ["M/M/c (fresh params)", mmc, "meets SLO while params current"],
        ["reactive autoscaler", f"{outcome.mean_allocation:.0f} mean / {outcome.peak_allocation} peak",
         f"{outcome.overload_fraction:.1%} of windows overloaded"],
    ]
    print()
    print(render_table(
        ["approach", "servers", "notes"],
        rows, title="Ablation: capacity by planning approach (pool B, 1 DC)",
    ))

    # The industry default allocates materially more than the plan.
    assert static > blackbox.planned_servers * 1.3
    # The autoscaler misses SLOs during ramps with realistic lag.
    assert outcome.overload_fraction > 0.0
    # Our plan is lean but not reckless.
    assert blackbox.planned_servers < 40
    assert blackbox.planned_servers >= 20


def test_ablation_queuing_model_staleness(benchmark, world):
    """A 40 % per-request cost increase invalidates the M/M/c plan."""
    _sim, demand = world
    peak = float(np.percentile(demand.values, 99.5))
    fresh = MMcPlanner(
        service_time_s=0.020, target_latency_s=0.036,
        requests_per_server_slot=16,
    )

    def staleness_gap():
        planned_with_stale_params = fresh.required_servers(peak)
        truly_needed = fresh.with_service_time(0.020 * 1.4).required_servers(peak)
        return planned_with_stale_params, truly_needed

    stale, needed = benchmark(staleness_gap)
    print(f"\nM/M/c: planned {stale} servers on stale params; "
          f"reality needs {needed} after a 1.4x cost deployment")
    assert needed > stale
    # The shortfall is material — the pool would run ~40 % hot.
    assert needed >= stale * 1.2


def test_ablation_blackbox_plan_verified_in_production(benchmark, world):
    """Apply the black-box plan and verify QoS holds (the real test)."""
    sim, _demand = world
    qos = QoSRequirement(latency_p95_ms=36.0)
    plan = HeadroomPlanner(sim.store, survive_dc_loss=False).plan_pool("B", qos)
    sim.resize_pool("B", "DC1", plan.planned_servers)
    start = sim.current_window

    benchmark.pedantic(lambda: sim.run_days(1), rounds=1, iterations=1)

    latency = sim.store.pool_window_aggregate(
        "B", Counter.LATENCY_P95.value, datacenter_id="DC1", start=start
    )
    print(f"\nafter resize to {plan.planned_servers}: p95-of-window-means "
          f"{latency.percentile(95):.1f} ms vs SLO {qos.latency_p95_ms} ms")
    assert latency.percentile(95) <= qos.latency_p95_ms * 1.05
