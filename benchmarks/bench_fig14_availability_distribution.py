"""Fig 14 — distribution of daily server availability.

Paper read-outs: overall mean availability 83 %; most servers online
at least 80 % of the time; visible populations near 85 % and at 98 %
(best practice); the sub-80 % population is pools repurposed off-peak.
"""

import numpy as np
import pytest

from repro.core.availability import study_fleet_availability
from repro.core.report import render_table


def test_fig14_availability_distribution(benchmark, paper_store):
    study = benchmark.pedantic(
        lambda: study_fleet_availability(paper_store), rounds=1, iterations=1
    )

    edges = np.linspace(0.5, 1.0, 11)  # 5 % bins from 50 % up
    _edges, fractions = study.availability_histogram(edges)
    rows = [
        [f"{lo:.0%}-{hi:.0%}", f"{frac:.1%}"]
        for lo, hi, frac in zip(edges[:-1], edges[1:], fractions)
    ]
    print()
    print(render_table(
        ["daily availability", "share of server-days"],
        rows,
        title=(
            f"Fig 14: availability distribution "
            f"(mean {study.overall_mean:.1%}; paper: 83%)"
        ),
    ))

    # Mean availability in the paper's neighbourhood.
    assert 0.75 < study.overall_mean < 0.97
    # A large population at the 95-100 % best-practice mode.
    assert fractions[-1] > 0.4
    # And a distinct low-availability population (repurposed pools).
    low_mass = fractions[: 5].sum()  # below 75 %
    assert low_mass > 0.02
    # Infrastructure floor ~2 % (the paper's estimate).
    assert study.infrastructure_overhead == pytest.approx(0.02, abs=0.015)
