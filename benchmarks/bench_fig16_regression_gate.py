"""Fig 16 — the offline regression-test case study (§III-C).

A change shipped to fix a memory leak.  The offline gate (two identical
pools, identical seeded synthetic ramp, one pool per build) confirms
the leak is gone but finds a latency regression that grows with
workload — the box plot of Fig 16.  This bench regenerates the per-
level latency distributions and the gate verdict.
"""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.deployment import (
    leak_fix_with_latency_regression,
    leaky_version,
)
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.regression_analysis import RegressionGate, profile_response
from repro.core.report import render_table
from repro.telemetry.counters import Counter
from repro.workload.synthetic import RampPlan

COUNTERS = (
    Counter.REQUESTS.value,
    Counter.PROCESSOR_UTILIZATION.value,
    Counter.LATENCY_P95.value,
    Counter.AVAILABILITY.value,
    Counter.MEMORY_WORKING_SET.value,
)


class _RampPattern:
    def __init__(self, plan: RampPlan) -> None:
        self.plan = plan

    def demand_at(self, window: int) -> float:
        step = min(window, self.plan.total_windows - 1)
        return self.plan.level_at(step)


def _run_ramp(version, label, seed=171):
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=12, seed=seed
    )
    sim = Simulator(
        fleet, seed=seed,
        config=SimulationConfig(counters=COUNTERS, apply_availability_policies=False),
    )
    sim.set_version("B", version)
    ramp = RampPlan.linear(600.0, 6_600.0, n_levels=12, windows_per_level=12)
    sim.fleet.deployment("B", "DC1").pattern = _RampPattern(ramp)
    sim.run(ramp.total_windows)
    return sim.store


@pytest.fixture(scope="module")
def profiles():
    baseline_store = _run_ramp(leaky_version(), "baseline")
    change_store = _run_ramp(
        leak_fix_with_latency_regression(queue_multiplier=2.5), "change"
    )
    baseline = profile_response(baseline_store, "B", "baseline", "DC1")
    change = profile_response(change_store, "B", "change", "DC1")
    return baseline, change


def test_fig16_regression_gate(benchmark, profiles):
    baseline, change = profiles
    gate = RegressionGate(latency_tolerance_ms=2.0, cpu_tolerance_pct=1.0)
    report = benchmark(lambda: gate.compare(baseline, change))

    # The Fig 16 box-plot data: per-workload-level latency spreads.
    rows = []
    levels = sorted(baseline.latency_by_level)
    for level in levels:
        base_vals = baseline.latency_by_level[level]
        # Match the change profile's nearest level.
        change_level = min(change.latency_by_level, key=lambda x: abs(x - level))
        change_vals = change.latency_by_level[change_level]
        rows.append([
            f"{level:.0f}",
            f"{np.median(base_vals):.1f}",
            f"{np.median(change_vals):.1f}",
            f"{np.median(change_vals) - np.median(base_vals):+.1f}",
        ])
    print()
    print(render_table(
        ["RPS/server", "baseline p95 (ms)", "change p95 (ms)", "delta"],
        rows,
        title="Fig 16: per-level latency, baseline vs change",
    ))
    print(report.describe())

    # The verdicts of the paper's case study.
    assert report.memory_leak_fixed
    assert report.latency_regressed
    assert not report.passed
    # The regression grows with workload (invisible at low load).
    assert report.latency_delta_ms[0] < 1.5
    assert report.latency_delta_ms[-1] > 2.0
    assert report.latency_delta_ms[-1] > 2 * max(report.latency_delta_ms[0], 0.1)


def test_fig16_gate_passes_clean_change(benchmark, profiles):
    """Control: comparing a build against itself must pass the gate."""
    baseline, _change = profiles
    gate = RegressionGate(latency_tolerance_ms=2.0, cpu_tolerance_pct=1.0)
    report = benchmark(lambda: gate.compare(baseline, baseline))
    assert report.max_latency_regression_ms == pytest.approx(0.0, abs=1e-9)
    assert not report.latency_regressed
