"""Table II + Figs 8-9 — the pool B 30 % reduction experiment (§III-A1).

Paper numbers: five weekdays of baseline at ~377 RPS/server (95th pct),
then a 30 % reduction coinciding with a traffic increase, landing at
~540 RPS/server (+43 %).  The linear CPU model (0.028x + 1.37,
R^2 = 0.984) forecast 16.5 % CPU vs 17.4 % measured; the quadratic
latency model forecast 31.5 ms vs 30.9 ms measured.
"""

import pytest

from repro.core.report import render_table
from repro.experiments import run_reduction_experiment
from repro.workload.diurnal import WINDOWS_PER_DAY


@pytest.fixture(scope="module")
def report(pool_b_experiment_sim):
    return run_reduction_experiment(
        pool_b_experiment_sim,
        "B",
        "DC1",
        reduction_fraction=0.30,
        baseline_windows=5 * WINDOWS_PER_DAY,
        reduced_windows=2 * WINDOWS_PER_DAY,
        demand_scale_during_reduction=1.10,
    )


def test_table2_pool_b_reduction(benchmark, report, pool_b_experiment_sim):
    # Benchmark the pure model-training step on the recorded baseline.
    from repro.core.curves import fit_pool_response

    store = pool_b_experiment_sim.store
    benchmark(
        lambda: fit_pool_response(store, "B", "DC1", start=0, stop=5 * WINDOWS_PER_DAY)
    )

    print()
    print(report.render_percentile_table())
    print()
    print(render_table(
        ["quantity", "paper", "measured"],
        [
            ["CPU slope (%/RPS)", "0.028", f"{report.resource_model.model.slope:.4f}"],
            ["CPU fit R^2", "0.984", f"{report.resource_model.model.r2:.3f}"],
            ["latency x^2 coeff", "4.03e-5", f"{report.qos_model.model.coefficients[0]:.2e}"],
            ["forecast CPU @ stage 2", "16.5%", f"{report.forecast_cpu_pct:.1f}%"],
            ["measured CPU @ stage 2", "17.4%", f"{report.measured_cpu_pct:.1f}%"],
            ["forecast p95 latency", "31.5ms", f"{report.forecast_latency_ms:.1f}ms"],
            ["measured p95 latency", "30.9ms", f"{report.measured_latency_ms:.1f}ms"],
        ],
        title="Table II / Figs 8-9: pool B (paper vs measured)",
    ))

    # --- Table II shape: per-server load rises at every percentile ---
    assert report.reduced.rps_per_server_p50 > report.baseline.rps_per_server_p50
    assert report.reduced.rps_per_server_p75 > report.baseline.rps_per_server_p75
    assert report.reduced.rps_per_server_p95 > report.baseline.rps_per_server_p95
    # Reduction (30 %) plus traffic growth pushes load up by >= 1/3.
    assert report.rps_increase_at_p95 > 0.33

    # --- Fig 8: linear CPU prediction holds ---
    assert report.resource_model.model.r2 > 0.95
    assert report.resource_model.model.slope == pytest.approx(0.028, rel=0.1)
    assert report.cpu_forecast_error_pct < 1.5

    # --- Fig 9: quadratic latency prediction holds within ~1-2 ms ---
    assert report.qos_model.model.coefficients[0] > 0
    assert report.latency_forecast_error_ms < 2.5
    # Negative linear coefficient — the cold-start dip the paper saw.
    assert report.qos_model.model.coefficients[1] < 0
