"""Fig 7 — RSM iterations shrinking a pool toward its QoS limit.

The paper's chart shows latency climbing over successive supervised
server reductions until the 14 ms QoS limit is reached, at which point
the optimizer stops.  The bench runs the full loop against the
simulator and regenerates the iteration series.
"""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.rsm import ResponseSurfaceOptimizer
from repro.core.slo import QoSRequirement
from repro.core.report import render_table
from repro.experiments import SimulatorRunner


@pytest.fixture(scope="module")
def rsm_outcome():
    fleet = build_single_pool_fleet(
        "F", n_datacenters=1, servers_per_deployment=40, seed=151
    )
    sim = Simulator(
        fleet, seed=151,
        config=SimulationConfig(apply_availability_policies=False),
    )
    sim.run(720)  # history before the first experiment
    qos = QoSRequirement(latency_p95_ms=14.0)  # the paper's Fig 7 limit
    optimizer = ResponseSurfaceOptimizer(
        store=sim.store,
        pool_id="F",
        datacenter_id="DC1",
        qos=qos,
        runner=SimulatorRunner(sim),
        iteration_windows=240,
        reduction_step=0.12,
        max_iterations=10,
    )
    return optimizer.optimize(initial_servers=40), sim


def test_fig7_rsm_iterations(benchmark, rsm_outcome):
    result, _sim = rsm_outcome

    # The benchmarked step: refitting the Eq. 1 partition models over
    # the accumulated history (the "Model" move of each iteration).
    from repro.core.partitions import partition_by_total_load, partition_observations
    from repro.core.curves import fit_servers_qos_model
    from repro.telemetry.counters import Counter

    store = _sim.store

    def refit():
        total = store.pool_window_aggregate(
            "F", Counter.REQUESTS.value, datacenter_id="DC1", reducer="sum"
        )
        models = []
        for partition in partition_by_total_load(total, 4):
            ns, ls = partition_observations(store, "F", "DC1", partition)
            if ns.size >= 6 and np.unique(ns).size >= 2:
                models.append(
                    fit_servers_qos_model(ns, ls, "F", "DC1", partition.index)
                )
        return models

    models = benchmark(refit)
    assert models

    rows = [
        [
            it.iteration,
            it.n_servers,
            f"{it.measured_latency_p95_ms:.1f}",
            f"{it.forecast_next_latency_ms:.1f}" if it.forecast_next_latency_ms else "-",
            "yes" if it.qos_violated else "no",
        ]
        for it in result.iterations
    ]
    print()
    print(render_table(
        ["iter", "servers", "measured p95 ms", "forecast next ms", "QoS hit"],
        rows,
        title="Fig 7: RSM iterations toward the 14 ms QoS limit",
    ))
    print(f"recommendation: {result.initial_servers} -> {result.recommended_servers} servers")

    # Shape checks: multiple iterations, monotone reductions, latency
    # climbing toward (but compliant stages staying under) the limit.
    assert len(result.iterations) >= 3
    sizes = [it.n_servers for it in result.iterations]
    assert all(b <= a for a, b in zip(sizes, sizes[1:]))
    compliant = [it for it in result.iterations if not it.qos_violated]
    assert all(it.measured_latency_p95_ms <= 14.0 for it in compliant)
    assert result.recommended_servers < result.initial_servers
    # The last compliant stage sits close to the limit (within 25 %),
    # i.e. the loop actually approached the response surface boundary.
    final = compliant[-1].measured_latency_p95_ms
    assert final > 14.0 * 0.6
