"""Methodology Step 3 — synthetic-workload fidelity (§II-C).

Not a numbered figure, but a step the paper calls "novel and important":
before any offline validation is trusted, the synthetic workload must
reproduce production's response — "for the same volume of synthetic
workload we see the same QoS and resource usage values."

The bench fits a synthetic model on production telemetry, drives an
identical offline pool with the synthetic trace, and compares the two
fitted response curves.
"""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.curves import fit_pool_response
from repro.core.report import render_table
from repro.telemetry.counters import Counter
from repro.workload.synthetic import SyntheticWorkloadModel, compare_traces
from repro.workload.traces import WorkloadTrace


class _TracePattern:
    """Drive a deployment from a recorded/synthetic trace."""

    def __init__(self, trace: WorkloadTrace) -> None:
        self.trace = trace

    def demand_at(self, window: int) -> float:
        idx = min(window, len(self.trace) - 1) + self.trace.start_window
        return self.trace.total_at(idx)


def _simulate(pattern_override=None, seed=211, windows=1440):
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=16, seed=seed
    )
    sim = Simulator(
        fleet, seed=seed,
        config=SimulationConfig(apply_availability_policies=False),
    )
    if pattern_override is not None:
        sim.fleet.deployment("B", "DC1").pattern = pattern_override
    sim.run(windows)
    return sim


@pytest.fixture(scope="module")
def production_and_synthetic():
    production = _simulate()
    # Record production's offered workload as a trace.
    recorded = production.store.pool_window_aggregate(
        "B", Counter.REQUESTS.value, datacenter_id="DC1", reducer="sum"
    )
    prod_trace = WorkloadTrace(
        start_window=0,
        totals=recorded.values,
        class_volumes={"query": recorded.values},
    )
    model = SyntheticWorkloadModel().fit(prod_trace)
    synthetic_trace = model.generate(1440, np.random.default_rng(5))
    offline = _simulate(
        pattern_override=_TracePattern(synthetic_trace), seed=213
    )
    return production, offline, prod_trace, synthetic_trace


def test_step3_synthetic_fidelity(benchmark, production_and_synthetic):
    production, offline, prod_trace, synthetic_trace = production_and_synthetic

    def score():
        workload_report = compare_traces(prod_trace, synthetic_trace)
        prod_resource, prod_qos = fit_pool_response(
            production.store, "B", "DC1"
        )
        syn_resource, syn_qos = fit_pool_response(offline.store, "B", "DC1")
        return workload_report, prod_resource, prod_qos, syn_resource, syn_qos

    workload_report, prod_resource, prod_qos, syn_resource, syn_qos = (
        benchmark.pedantic(score, rounds=1, iterations=1)
    )

    # Compare responses at matched volumes across the common range.
    lo = max(prod_qos.model.x_min, syn_qos.model.x_min)
    hi = min(prod_qos.model.x_max, syn_qos.model.x_max)
    grid = np.linspace(lo, hi, 20)
    cpu_gap = np.abs(prod_resource.model.predict(grid) - syn_resource.model.predict(grid))
    lat_gap = np.abs(prod_qos.model.predict(grid) - syn_qos.model.predict(grid))

    print()
    print(render_table(
        ["check", "result"],
        [
            ["workload fidelity", workload_report.describe()],
            ["CPU slope prod vs synth",
             f"{prod_resource.model.slope:.4f} vs {syn_resource.model.slope:.4f}"],
            ["max CPU gap on common range", f"{cpu_gap.max():.2f} pts"],
            ["max latency gap on common range", f"{lat_gap.max():.2f} ms"],
        ],
        title="Step 3: synthetic workload drives the same response",
    ))

    assert workload_report.passed
    # "For the same volume of synthetic workload we see the same QoS
    # and resource usage values."
    assert cpu_gap.max() < 1.0
    assert lat_gap.max() < 2.0
    assert syn_resource.model.slope == pytest.approx(
        prod_resource.model.slope, rel=0.05
    )
