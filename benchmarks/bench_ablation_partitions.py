"""Ablation — total-load partitioning vs pooled Eq. 1 fitting (§II-B2).

"Our experimental design controls for total pool workload since we are
modeling how pool QoS changes as a function of the number of servers
processing a given total workload."  Without the r_idj partitions, the
latency-vs-server-count fit confounds server count with the diurnal
load level that happened to prevail at each count, biasing the
response surface.  This bench quantifies the bias on simulated
experiment history.
"""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.curves import fit_servers_qos_model
from repro.core.partitions import partition_by_total_load, partition_observations
from repro.core.report import render_table
from repro.telemetry.counters import Counter


@pytest.fixture(scope="module")
def experiment_history():
    """History spanning three pool sizes across full diurnal cycles."""
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=40, seed=201
    )
    sim = Simulator(
        fleet, seed=201,
        config=SimulationConfig(apply_availability_policies=False),
    )
    for n_servers in (40, 34, 28):
        sim.resize_pool("B", "DC1", n_servers)
        sim.run(720)
    return sim


def _ground_truth_latency(n_servers, total_rps):
    """True mean p95 at a (count, load) point, from the simulator model."""
    from repro.cluster.service import service_catalog

    profile = service_catalog()["B"]
    rps = total_rps / n_servers
    util = (profile.noise.idle_cpu_pct + profile.cpu_cost_per_rps() * rps) / 100.0
    return profile.latency.p95_ms(rps, util)


def test_ablation_partitioned_vs_pooled(benchmark, experiment_history):
    sim = experiment_history
    store = sim.store
    total = store.pool_window_aggregate(
        "B", Counter.REQUESTS.value, datacenter_id="DC1", reducer="sum"
    )
    counts = store.pool_window_aggregate(
        "B", Counter.REQUESTS.value, datacenter_id="DC1", reducer="count"
    )
    latency = store.pool_window_aggregate(
        "B", Counter.LATENCY_P95.value, datacenter_id="DC1"
    )

    def fit_both_ways():
        # Partitioned: fit within the heaviest-load partition.
        partitions = partition_by_total_load(total, 4)
        heavy = partitions[-1]
        ns, ls = partition_observations(store, "B", "DC1", heavy)
        partitioned = fit_servers_qos_model(ns, ls, "B", "DC1", heavy.index)
        # Pooled: fit across all windows regardless of load.
        all_ns, all_ls = counts.align_with(latency)
        pooled = fit_servers_qos_model(all_ns, all_ls, "B", "DC1", -1)
        return partitioned, pooled, heavy

    partitioned, pooled, heavy = benchmark.pedantic(
        fit_both_ways, rounds=1, iterations=1
    )

    # Score both at a held-out reduction (24 servers) under the heavy
    # partition's load level.
    eval_load = heavy.midpoint
    truth = _ground_truth_latency(24, eval_load)
    part_err = abs(partitioned.forecast_latency(24) - truth)
    pooled_err = abs(pooled.forecast_latency(24) - truth)

    print()
    print(render_table(
        ["fit", "forecast @24 servers (ms)", "truth (ms)", "abs err"],
        [
            ["partitioned (r_idj)", f"{partitioned.forecast_latency(24):.1f}",
             f"{truth:.1f}", f"{part_err:.1f}"],
            ["pooled (no control)", f"{pooled.forecast_latency(24):.1f}",
             f"{truth:.1f}", f"{pooled_err:.1f}"],
        ],
        title="Ablation: controlling for total load in Eq. 1 fits",
    ))

    # Partitioning materially reduces forecast error at the heavy load
    # level that actually binds capacity decisions.
    assert part_err < pooled_err
    assert part_err < 3.0
