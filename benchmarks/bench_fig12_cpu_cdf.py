"""Fig 12 — CDF of per-server 95th-percentile CPU utilization.

Paper read-outs: ~60 % of servers have a 95th-percentile CPU of 15 %
or less; 80 % use less than 30 %; a small (~20 %) population spreads
between 30 % and 100 %.
"""

import numpy as np
import pytest

from repro.analysis.utilization import study_fleet_utilization
from repro.core.report import render_table


def test_fig12_cpu_cdf(benchmark, paper_store):
    study = benchmark.pedantic(
        lambda: study_fleet_utilization(paper_store), rounds=1, iterations=1
    )
    cdf = study.p95_cdf()

    thresholds = [10, 15, 20, 30, 40, 60]
    rows = [
        [f"<= {t}%", f"{cdf.fraction_at_or_below(float(t)):.0%}"]
        for t in thresholds
    ]
    print()
    print(render_table(
        ["95th-pct CPU", "share of servers"],
        rows,
        title="Fig 12: CDF of per-server 95th-percentile CPU "
              "(paper: 60% <= 15%, 80% < 30%)",
    ))

    # The paper's two anchor points, with scale tolerance.
    assert cdf.fraction_at_or_below(15.0) > 0.35
    assert cdf.fraction_at_or_below(30.0) > 0.70
    # A visible minority of hotter servers exists (C/G run warmer).
    assert cdf.fraction_at_or_below(30.0) < 0.999
    # CDF is a proper distribution.
    assert np.all(np.diff(cdf.ps) >= 0)
    assert cdf.ps[-1] == pytest.approx(1.0)
