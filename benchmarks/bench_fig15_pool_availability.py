"""Fig 15 — daily pool availability for three large pools.

Paper read-outs: availability is a *pool-level* signature, not a
server-level one — pools D and H sat consistently at 98 % while pool C
sat at 90 %, day after day, with small day-to-day variation (plus an
occasional major outage day).  We regenerate the series for pools B,
C and D (our catalogue's low / medium / high availability pools).
"""

import numpy as np
import pytest

from repro.core.availability import analyze_pool_availability
from repro.core.report import render_table


def test_fig15_pool_availability(benchmark, paper_store):
    pools = ("B", "C", "D")

    def analyze():
        return {p: analyze_pool_availability(paper_store, p) for p in pools}

    reports = benchmark.pedantic(analyze, rounds=1, iterations=1)

    rows = []
    for pool, report in reports.items():
        series = ", ".join(f"{v:.1%}" for v in report.pool_daily_series)
        rows.append([pool, f"{report.mean_availability:.1%}", series])
    print()
    print(render_table(
        ["pool", "mean", "daily series"],
        rows,
        title="Fig 15: daily pool availability (paper: C~90%, D/H~98%)",
    ))

    # Pool-level signatures are ordered and well separated.
    assert (
        reports["B"].mean_availability
        < reports["C"].mean_availability
        < reports["D"].mean_availability
    )
    assert reports["D"].mean_availability > 0.96
    assert reports["C"].mean_availability == pytest.approx(0.90, abs=0.04)
    assert reports["B"].mean_availability < 0.80

    # Day-to-day variation within a pool is small (the paper's
    # "availability of servers within a pool is quite constant").
    for report in reports.values():
        assert np.ptp(report.pool_daily_series) < 0.05
