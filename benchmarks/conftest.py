"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  The
expensive part — simulating the fleet — happens once per session in
these fixtures; the benchmarked callables are the pure analyses that
read the resulting telemetry, so pytest-benchmark can run them
repeatedly without re-simulating.

Scale note: the paper's fleet is 100K+ servers over 90 days; these
fixtures use hundreds of servers over a few days.  Shapes (who wins,
by what factor, where crossovers fall) are the reproduction target,
not absolute magnitudes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.builders import (
    PAPER_DATACENTERS,
    build_paper_fleet,
    build_single_pool_fleet,
)
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.telemetry.counters import Counter

RESOURCE_COUNTERS = (
    Counter.REQUESTS.value,
    Counter.PROCESSOR_UTILIZATION.value,
    Counter.LATENCY_P95.value,
    Counter.AVAILABILITY.value,
    Counter.NETWORK_BYTES_TOTAL.value,
    Counter.NETWORK_PACKETS.value,
    Counter.DISK_READ_BYTES.value,
    Counter.DISK_QUEUE_LENGTH.value,
    Counter.MEMORY_PAGES.value,
)


@pytest.fixture(scope="session")
def paper_sim():
    """The full Table I fleet: 7 pools x 9 DCs x 12 servers, 2 days."""
    fleet = build_paper_fleet(servers_per_deployment=12, seed=101)
    sim = Simulator(
        fleet,
        seed=101,
        config=SimulationConfig(record_request_classes=True),
    )
    sim.run_days(2)
    return sim


@pytest.fixture(scope="session")
def paper_store(paper_sim):
    return paper_sim.store


def _flatten_weekends(fleet) -> None:
    """Remove the weekend demand dip for §III-A experiment fleets.

    The paper's two-stage experiments compared weekday baselines with
    weekday reduction stages; a weekend dip in stage two would
    understate the per-server load shift the tables report.
    """
    from dataclasses import replace

    for deployment in fleet.deployments():
        deployment.pattern = replace(deployment.pattern, weekend_factor=1.0)


@pytest.fixture(scope="session")
def pool_b_experiment_sim():
    """Pool B, one DC, 50 servers — the §III-A1 experiment substrate."""
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=50, seed=103
    )
    _flatten_weekends(fleet)
    return Simulator(
        fleet,
        seed=103,
        config=SimulationConfig(apply_availability_policies=False),
    )


@pytest.fixture(scope="session")
def pool_d_experiment_sim():
    """Pool D, one DC, 50 servers — the §III-A2 experiment substrate."""
    fleet = build_single_pool_fleet(
        "D", n_datacenters=1, servers_per_deployment=50, seed=107
    )
    _flatten_weekends(fleet)
    return Simulator(
        fleet,
        seed=107,
        config=SimulationConfig(apply_availability_policies=False),
    )
