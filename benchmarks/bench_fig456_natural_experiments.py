"""Figs 4-6 — the two natural experiments of §II-B1.

Event 1 (Figs 4-5): a multi-datacenter failover raises surviving
pools' workload by a median ~56 % (one DC +127 %); CPU follows the
linear model fitted on the surrounding days, and latency stays within
QoS.

Event 2 (Fig 6): a 4x regional traffic surge; the quadratic latency
trend fitted on calm data still predicts the event, and the elevated
latency at *low* workload (cold caches) is visible.
"""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.faults import DatacenterOutage, TrafficSurge
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.natural_experiments import (
    analyze_natural_experiment,
    detect_surge_events,
)
from repro.core.report import render_table
from repro.telemetry.counters import Counter
from repro.workload.diurnal import WINDOWS_PER_DAY


@pytest.fixture(scope="module")
def event1_sim():
    """Failover event: 3 of 6 DCs go dark for 2 hours (median +56 %-ish)."""
    fleet = build_single_pool_fleet(
        "B", n_datacenters=6, servers_per_deployment=12, seed=141
    )
    sim = Simulator(
        fleet, seed=141,
        config=SimulationConfig(apply_availability_policies=False),
    )
    start = 2 * WINDOWS_PER_DAY + 60
    for dc in ("DC1", "DC3", "DC6"):
        sim.add_outage(DatacenterOutage(dc, start, 60))
    sim.run(4 * WINDOWS_PER_DAY)
    return sim, start


@pytest.fixture(scope="module")
def event2_sim():
    """Fig 6: a 4x surge into one datacenter of pool D."""
    fleet = build_single_pool_fleet(
        "D", n_datacenters=5, servers_per_deployment=14, seed=143
    )
    sim = Simulator(
        fleet, seed=143,
        config=SimulationConfig(apply_availability_policies=False),
    )
    start = 2 * WINDOWS_PER_DAY + 80
    sim.add_surge(TrafficSurge("DC5", start, 50, factor=4.0, pool_id="D"))
    sim.run(4 * WINDOWS_PER_DAY)
    return sim, start


def test_fig4_workload_step(benchmark, event1_sim):
    sim, start = event1_sim
    survivors = ("DC2", "DC4", "DC5")

    def detect():
        events = []
        for dc in survivors:
            events.extend(
                detect_surge_events(sim.store, "B", dc, threshold=0.15)
            )
        return events

    events = benchmark(detect)
    assert events, "failover surge not detected"
    increases = [e.median_increase_fraction for e in events]
    rows = [
        [e.datacenter_id, e.start_window, f"+{e.median_increase_fraction:.0%}",
         f"+{e.peak_increase_fraction:.0%}"]
        for e in events
    ]
    print()
    print(render_table(
        ["survivor DC", "start", "median increase", "peak increase"],
        rows,
        title="Fig 4: workload step during the failover event "
              "(paper: median +56%, max +127%)",
    ))
    # Median increase across surviving pools lands in the paper's
    # half-again band.
    assert 0.3 <= float(np.median(increases)) <= 1.3
    # The events coincide with the injected outage.
    assert any(abs(e.start_window - start) <= 10 for e in events)


def test_fig5_cpu_follows_linear_model(benchmark, event1_sim):
    sim, _start = event1_sim
    events = detect_surge_events(sim.store, "B", "DC2", threshold=0.15)
    event = max(events, key=lambda e: e.peak_increase_fraction)

    report = benchmark(lambda: analyze_natural_experiment(sim.store, event))
    print(
        f"\nFig 5: CPU model {report.resource_model.model.describe()}; "
        f"event-period error {report.cpu_relative_error:.1%}"
    )
    assert report.cpu_relative_error < 0.1


def test_fig6_latency_trend_holds_at_4x(benchmark, event2_sim):
    sim, _start = event2_sim
    events = detect_surge_events(sim.store, "D", "DC5", threshold=0.5)
    assert events
    event = max(events, key=lambda e: e.peak_increase_fraction)

    report = benchmark(lambda: analyze_natural_experiment(sim.store, event))
    print(
        f"\nFig 6: latency model {report.qos_model.model.describe()}; "
        f"event error {report.latency_relative_error:.1%}, "
        f"load extension {report.load_extension_factor:.2f}x"
    )
    # The quadratic trend predicted DC5's behaviour at 4x load.
    assert report.latency_relative_error < 0.25
    assert report.load_extension_factor > 1.5

    # During the event latency stayed finite and bounded (the paper's
    # event peaked below 26 ms for their service; ours below the SLO
    # blow-up region).
    lat = sim.store.pool_window_aggregate(
        "D", Counter.LATENCY_P95.value, datacenter_id="DC5",
        start=event.start_window, stop=event.stop_window,
    )
    assert lat.percentile(95) < 120.0


def test_fig6_cold_start_elevation(benchmark, event2_sim):
    """The elevated latency at low workload (left edge of Fig 6)."""
    sim, _start = event2_sim
    store = sim.store

    def low_vs_mid():
        rps = store.pool_window_aggregate(
            "D", Counter.REQUESTS.value, datacenter_id="DC1"
        )
        lat = store.pool_window_aggregate(
            "D", Counter.LATENCY_P95.value, datacenter_id="DC1"
        )
        x, y = rps.align_with(lat)
        low = y[x < np.percentile(x, 10)].mean()
        mid = y[(x > np.percentile(x, 40)) & (x < np.percentile(x, 60))].mean()
        return float(low), float(mid)

    low, mid = benchmark(low_vs_mid)
    print(f"\nFig 6 left edge: mean p95 at low load {low:.1f} ms vs mid load {mid:.1f} ms")
    assert low > mid
