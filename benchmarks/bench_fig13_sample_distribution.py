"""Fig 13 — distribution of individual 120 s CPU samples.

Paper read-outs: CPU rarely exceeds 25 % at any point in the day —
only ~1 % of samples are above 25 % and fewer than 0.1 % above 40 %.
High per-server maxima (Fig 12) are short, rare spikes, not sustained
load.
"""

import pytest

from repro.analysis.utilization import study_fleet_utilization
from repro.core.report import render_table


def test_fig13_sample_distribution(benchmark, paper_store):
    study = benchmark.pedantic(
        lambda: study_fleet_utilization(paper_store), rounds=1, iterations=1
    )

    rows = [
        [f"> {t}%", "1%" if t == 25 else ("<0.1%" if t == 40 else "-"),
         f"{study.fraction_of_samples_above(float(t)):.2%}"]
        for t in (15, 25, 40, 50)
    ]
    print()
    print(render_table(
        ["CPU sample", "paper", "measured"],
        rows,
        title="Fig 13: fraction of 120 s samples above each CPU level",
    ))

    # High-CPU samples are rare and sharply rarer with level.
    above_25 = study.fraction_of_samples_above(25.0)
    above_40 = study.fraction_of_samples_above(40.0)
    above_50 = study.fraction_of_samples_above(50.0)
    assert above_25 < 0.25
    assert above_40 < 0.05
    assert above_40 < above_25 / 2
    # The paper's pool analysis saw no samples above 50 %; allow a
    # minuscule tail at our noise levels.
    assert above_50 < 0.01

    # Spikes-vs-sustained: far more servers *ever* exceed 25 % than the
    # fraction of time spent there (Fig 12 vs Fig 13 contrast).
    spiking_servers = study.fraction_of_servers_spiking_above(25.0)
    assert spiking_servers > above_25
