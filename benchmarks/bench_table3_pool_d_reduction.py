"""Table III + Figs 10-11 — the pool D 10 % reduction experiment (§III-A2).

Paper numbers: baseline ~78 RPS/server (95th pct); a 10 % reduction
plus traffic growth produced +22 % RPS/server.  The linear CPU model
(0.0916x + 5.006, R^2 = 0.94) forecast 13.7 % vs 13.3 % measured; the
quadratic latency model forecast 52.6 ms vs 50.7 ms measured.  The
same experiment replicated in another datacenter with similar accuracy
— reproduced here as a second seeded run.
"""

import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.report import render_table
from repro.experiments import run_reduction_experiment
from repro.workload.diurnal import WINDOWS_PER_DAY


@pytest.fixture(scope="module")
def report(pool_d_experiment_sim):
    return run_reduction_experiment(
        pool_d_experiment_sim,
        "D",
        "DC1",
        reduction_fraction=0.10,
        baseline_windows=5 * WINDOWS_PER_DAY,
        reduced_windows=2 * WINDOWS_PER_DAY,
        demand_scale_during_reduction=1.10,
    )


def test_table3_pool_d_reduction(benchmark, report, pool_d_experiment_sim):
    from repro.core.curves import fit_pool_response

    store = pool_d_experiment_sim.store
    benchmark(
        lambda: fit_pool_response(store, "D", "DC1", start=0, stop=5 * WINDOWS_PER_DAY)
    )

    print()
    print(report.render_percentile_table())
    print()
    print(render_table(
        ["quantity", "paper", "measured"],
        [
            ["CPU slope (%/RPS)", "0.0916", f"{report.resource_model.model.slope:.4f}"],
            ["CPU fit R^2", "0.940", f"{report.resource_model.model.r2:.3f}"],
            ["RPS/server shift @95th", "+22%", f"+{report.rps_increase_at_p95:.0%}"],
            ["forecast CPU", "13.7%", f"{report.forecast_cpu_pct:.1f}%"],
            ["measured CPU", "13.3%", f"{report.measured_cpu_pct:.1f}%"],
            ["forecast p95 latency", "52.6ms", f"{report.forecast_latency_ms:.1f}ms"],
            ["measured p95 latency", "50.7ms", f"{report.measured_latency_ms:.1f}ms"],
        ],
        title="Table III / Figs 10-11: pool D (paper vs measured)",
    ))

    # Table III shape: a 10 % reduction plus growth gives a ~20 % load
    # shift, much smaller than pool B's.
    assert 0.1 < report.rps_increase_at_p95 < 0.45

    # Fig 10: linear CPU prediction.
    assert report.resource_model.model.r2 > 0.9
    assert report.resource_model.model.slope == pytest.approx(0.092, rel=0.1)
    assert report.cpu_forecast_error_pct < 1.0

    # Fig 11: quadratic latency prediction within the paper's ~2 ms.
    assert report.latency_forecast_error_ms < 3.0


def test_table3_replication_other_datacenter(benchmark):
    """The paper replicated the experiment in DC 4 with similar accuracy."""
    fleet = build_single_pool_fleet(
        "D", n_datacenters=4, servers_per_deployment=30, seed=163
    )
    sim = Simulator(
        fleet, seed=163,
        config=SimulationConfig(apply_availability_policies=False),
    )

    def replicate():
        return run_reduction_experiment(
            sim, "D", "DC4",
            reduction_fraction=0.10,
            baseline_windows=2 * WINDOWS_PER_DAY,
            reduced_windows=WINDOWS_PER_DAY,
            demand_scale_during_reduction=1.15,
        )

    replica = benchmark.pedantic(replicate, rounds=1, iterations=1)
    print(
        f"\nDC4 replication: CPU err {replica.cpu_forecast_error_pct:.2f} pts, "
        f"latency err {replica.latency_forecast_error_ms:.2f} ms"
    )
    assert replica.cpu_forecast_error_pct < 1.5
    assert replica.latency_forecast_error_ms < 3.5
