"""Simulation + ingest throughput: columnar engine vs the seed path.

The refactor target: advancing the fleet one telemetry window used to
cost a Python loop per server per counter; the columnar engine computes
each counter for a whole pool as one NumPy array and appends it to the
metric store in one batched call.  This benchmark measures windows/sec
and samples/sec on a large synthetic fleet (1000 servers x 1000
windows) for both engines and records the speedup in
``BENCH_sim_throughput.json`` for the perf trajectory.

The legacy engine is measured over a window subset and extrapolated
per-window (it is the seed's per-sample path, ~2 orders of magnitude
slower; running it for the full duration would only add noise-free
waiting).

Run as a pytest benchmark (``pytest benchmarks/bench_sim_throughput.py``)
or directly (``PYTHONPATH=src python benchmarks/bench_sim_throughput.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig, Simulator

#: Headline configuration (the ISSUE's 1000-server x 1000-window run).
SERVERS = 1000
WINDOWS = 1000
#: Windows actually executed on the slow legacy engine before
#: extrapolating its per-window rate.
LEGACY_WINDOWS = 60

#: Required speedup of the columnar engine over the seed path.
TARGET_SPEEDUP = 5.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim_throughput.json"


def _measure(engine: str, n_windows: int, servers: int = SERVERS) -> dict:
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=servers, seed=29
    )
    sim = Simulator(fleet, seed=29, config=SimulationConfig(engine=engine))
    started = time.perf_counter()
    sim.run(n_windows)
    elapsed = time.perf_counter() - started
    samples = sim.store.sample_count()
    return {
        "engine": engine,
        "servers": servers,
        "windows": n_windows,
        "elapsed_s": elapsed,
        "samples": samples,
        "windows_per_sec": n_windows / elapsed,
        "samples_per_sec": samples / elapsed,
    }


def run_benchmark() -> dict:
    batch = _measure("batch", WINDOWS)
    legacy = _measure("legacy", LEGACY_WINDOWS)
    speedup = batch["windows_per_sec"] / legacy["windows_per_sec"]
    result = {
        "benchmark": "sim_throughput",
        "fleet": {"pool": "B", "servers": SERVERS, "windows": WINDOWS},
        "batch": batch,
        "legacy": legacy,
        "speedup_windows_per_sec": speedup,
        "target_speedup": TARGET_SPEEDUP,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_sim_throughput():
    result = run_benchmark()
    batch = result["batch"]
    legacy = result["legacy"]
    print()
    print(
        f"columnar engine: {batch['windows_per_sec']:8.1f} windows/s "
        f"({batch['samples_per_sec']:,.0f} samples/s) over "
        f"{batch['windows']} windows x {batch['servers']} servers"
    )
    print(
        f"legacy engine:   {legacy['windows_per_sec']:8.1f} windows/s "
        f"({legacy['samples_per_sec']:,.0f} samples/s) over "
        f"{legacy['windows']} windows (extrapolated)"
    )
    print(f"speedup: {result['speedup_windows_per_sec']:.1f}x -> {RESULT_PATH.name}")
    assert result["speedup_windows_per_sec"] >= TARGET_SPEEDUP


if __name__ == "__main__":
    outcome = run_benchmark()
    print(json.dumps(outcome, indent=2))
