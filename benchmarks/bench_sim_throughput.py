"""Simulation + ingest throughput: engines, sharding and block emission.

Measures windows/sec and samples/sec on a large synthetic fleet (1000
servers x 1000 windows) for:

* the seed ``legacy`` per-sample path (measured over a window subset
  and extrapolated — it is ~2 orders of magnitude slower);
* the ``per-sample`` compatibility shim (vectorized emission, one
  store call per sample — also measured over a subset), so every
  CLI-exposed engine has a priced row (``tools/bench_check.py``
  enforces this from ``make test``);
* the PR 1 ``batch`` engine (per-window columnar emission + batched
  ingest) — the baseline every later configuration is judged against;
* a sweep of (shards, workers, block_windows, backend) configurations
  combining the sharded store (:class:`~repro.telemetry.sharding.\
ShardedMetricStore`) with cross-window block emission
  (``SimulationConfig.block_windows``) across all four shard backends.
  The remote backends pay one pickle crossing per row, so on a single
  CPU they document the distribution seam's cost, not a speedup; the
  ``tcp`` rows run against a real ``repro shard-server`` subprocess on
  loopback, so they additionally price the length-prefixed socket
  framing vs the processes backend's pipe;
* a ``streaming`` row: a 100k-window ``simulate --stream`` clock loop
  with rolling retention, run in its own subprocess so its
  ``peak_rss_mb`` (``ru_maxrss``) prices exactly the streaming run —
  the standing proof that a long horizon streams with bounded hot
  memory (``tools/bench_check.py`` requires the row, its stage
  breakdown, and the measured peak RSS);
* a ``query_latency`` row: the same streamed horizon with a live
  query server attached, hammered by a concurrent client — p50/p99
  round-trip of a live aggregate query, lock-seam waits included
  (``tools/bench_check.py`` requires this row too).

The best configuration must clear ``TARGET_BLOCK_SPEEDUP`` x the batch
baseline (and batch itself ``TARGET_SPEEDUP`` x legacy); all results
land in ``BENCH_sim_throughput.json`` for the perf trajectory.

Run as a pytest benchmark (``pytest benchmarks/bench_sim_throughput.py``)
or directly (``PYTHONPATH=src python benchmarks/bench_sim_throughput.py``;
pass ``--smoke`` for a fast, JSON-less sanity run, ``--backends`` for a
small serial/threads/processes/tcp comparison — the ``make
bench-backends`` target — or ``--tcp`` for the loopback-TCP-focused
sweep behind ``make bench-tcp``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

try:
    import resource
except ImportError:  # non-POSIX: the streaming row reports rss 0
    resource = None
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.telemetry.sharding import ShardedMetricStore
from repro.telemetry.workers import DEFAULT_PIPELINE_DEPTH

#: Headline configuration (the ISSUE's 1000-server x 1000-window run).
SERVERS = 1000
WINDOWS = 1000
#: Windows actually executed on the slow legacy engine before
#: extrapolating its per-window rate.
LEGACY_WINDOWS = 60
#: Windows for the per-sample compatibility shim (same emission as
#: batch, one store call per sample — slow enough to subset too).
PER_SAMPLE_WINDOWS = 120

#: Required speedup of the columnar engine over the seed path.
TARGET_SPEEDUP = 5.0
#: Required speedup of the best (shards, workers, block) configuration
#: over the plain per-window batch engine.
TARGET_BLOCK_SPEEDUP = 1.5

#: The (shards, workers, block_windows, backend) sweep.  Single-shard +
#: blocks is the expected winner on small machines; the sharded
#: variants document the fan-out cost of each backend at the same
#: (4-shard, block=64) point: serial = partitioning pass only, threads
#: = GIL-bound pool dispatch, processes = one pickle crossing per row,
#: tcp = the same crossing through a loopback socket to a real
#: shard-server subprocess (the price of the distribution seam, paid
#: off only with real cores or machines behind it).  The tcp point
#: appears twice: once restricted to the PR 4 wire behaviour (pickle
#: frames, synchronous per-shard sendall) and once with the current
#: default (negotiated binary column frames + pipelined writers), so
#: the JSON records the transport optimisation's before/after.
CONFIGS = (
    {"shards": 1, "workers": 1, "block_windows": 16},
    {"shards": 1, "workers": 1, "block_windows": 64},
    {"shards": 4, "workers": 1, "block_windows": 64, "backend": "serial"},
    {"shards": 4, "workers": 4, "block_windows": 64, "backend": "threads"},
    {"shards": 4, "workers": 1, "block_windows": 64, "backend": "processes"},
    {"shards": 4, "workers": 1, "block_windows": 64, "backend": "tcp",
     "pipeline_depth": 0, "binary_frames": False},  # the PR 4 wire
    {"shards": 4, "workers": 1, "block_windows": 64, "backend": "tcp"},
    # Replicated tcp: every ingest frame is mirrored to a replica
    # session on a second shard-server subprocess — the steady-state
    # price of surviving a primary's death (tools/bench_check.py
    # requires this row).
    {"shards": 4, "workers": 1, "block_windows": 64, "backend": "tcp",
     "replicas": 1},
)

#: The small backend comparison behind ``make bench-backends``
#: (``--backends``) and the loopback-TCP sweep behind ``make bench-tcp``
#: (``--tcp``).
BACKEND_SWEEP_SERVERS = 200
BACKEND_SWEEP_WINDOWS = 200

#: The streaming row (``simulate --stream``): a long-horizon clock loop
#: with rolling retention, priced for throughput *and* peak memory —
#: the row demonstrates that 100k windows stream with bounded hot
#: memory.  Small fleet: the point is horizon length, not fleet width.
STREAM_WINDOWS = 100_000
STREAM_SERVERS = 64
STREAM_RETAIN = 2048
STREAM_BLOCK = 64

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim_throughput.json"
REPO_ROOT = Path(__file__).resolve().parent.parent


@contextmanager
def _loopback_shard_server(max_sessions: int):
    """A real ``repro shard-server`` subprocess on an ephemeral port.

    Yields its ``host:port`` (parsed from the server's first stdout
    line, the documented scripting interface for ``--listen`` port 0),
    so tcp rows measure a true process boundary plus socket framing —
    not a same-process thread pretending to be remote.  Twin of the
    spawn helper in ``tests/test_cli.py`` — keep the stdout-line
    contract changes in sync.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "shard-server",
            "--listen", "127.0.0.1:0",
            "--max-sessions", str(max_sessions),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    try:
        line = process.stdout.readline()
        if not line.startswith("shard-server listening on "):
            raise RuntimeError(
                f"shard-server failed to start (got {line!r})"
            )
        yield line.rsplit(" ", 1)[-1].strip()
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
        process.stdout.close()


def _measure(
    engine: str,
    n_windows: int,
    servers: int = SERVERS,
    shards: int = 1,
    workers: int = 1,
    block_windows: int = 1,
    backend: Optional[str] = None,
    shard_addrs: Optional[list] = None,
    pipeline_depth: Optional[int] = None,
    binary_frames: bool = True,
    replicas: int = 0,
    replica_addrs: Optional[list] = None,
) -> dict:
    if backend == "tcp" and shard_addrs is None:
        # tcp rows own their server subprocess unless handed addresses;
        # a replicated row gets a second subprocess for the replica
        # sessions, so the mirror crosses a real process boundary too.
        with _loopback_shard_server(max_sessions=shards) as address:
            kwargs = dict(
                shards=shards,
                workers=workers,
                block_windows=block_windows,
                backend=backend,
                shard_addrs=[address] * shards,
                pipeline_depth=pipeline_depth,
                binary_frames=binary_frames,
                replicas=replicas,
            )
            if replicas:
                with _loopback_shard_server(
                    max_sessions=shards * replicas
                ) as replica_address:
                    return _measure(
                        engine, n_windows, servers,
                        replica_addrs=[
                            [replica_address] * replicas
                        ] * shards,
                        **kwargs,
                    )
            return _measure(engine, n_windows, servers, **kwargs)
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=servers, seed=29
    )
    store_kwargs = {}
    if pipeline_depth is not None:
        store_kwargs["pipeline_depth"] = pipeline_depth
    if replica_addrs is not None:
        store_kwargs["replica_addrs"] = replica_addrs
    store = (
        ShardedMetricStore(
            n_shards=shards,
            workers=workers,
            backend=backend,
            shard_addrs=shard_addrs,
            binary_frames=binary_frames,
            **store_kwargs,
        )
        if shards > 1 or backend is not None
        else None
    )
    sim = Simulator(
        fleet,
        store=store,
        seed=29,
        config=SimulationConfig(engine=engine, block_windows=block_windows),
    )
    started = time.perf_counter()
    sim.run(n_windows)
    # sample_count() is the read barrier: on the processes backend it
    # flushes every worker and waits for the answer, so buffered ingest
    # cannot hide outside the timed region.
    samples = sim.store.sample_count()
    elapsed = time.perf_counter() - started
    if store is not None:
        store.close()
    remote = store is not None and store.backend in ("processes", "tcp")
    return {
        "engine": engine,
        "servers": servers,
        "windows": n_windows,
        "shards": shards,
        "workers": workers,
        "block_windows": block_windows,
        "backend": store.backend if store is not None else "none",
        "pipeline_depth": (
            (pipeline_depth if pipeline_depth is not None
             else DEFAULT_PIPELINE_DEPTH)
            if remote else 0
        ),
        "wire": (
            ("binary" if binary_frames else "pickle")
            if store is not None and store.backend == "tcp"
            else "n/a"
        ),
        # Replica sessions mirrored per shard (tcp only); the
        # replicated-tcp row prices the fan-out's ingest cost.
        "replicas": replicas,
        "elapsed_s": elapsed,
        "samples": samples,
        "windows_per_sec": n_windows / elapsed,
        "samples_per_sec": samples / elapsed,
        # Per-stage wall-clock of the blocked engine (demand tensor /
        # counter emission / store ingest); zeros on per-window runs.
        "stages": {k: round(v, 6) for k, v in sim.stage_seconds.items()},
    }


def _stream_row(
    windows: int,
    servers: int,
    retain: int,
    block_windows: int,
) -> dict:
    """The ``--stream-row`` subprocess body: stream, measure, report.

    Runs in a child process because ``ru_maxrss`` is a process-lifetime
    high-water mark — measured in the parent it would price every
    earlier benchmark allocation, not the streaming run's bounded hot
    set.
    """
    from repro.cluster.streaming import StreamingSimulator

    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=servers, seed=29
    )
    sim = Simulator(
        fleet,
        seed=29,
        config=SimulationConfig(engine="batch", block_windows=block_windows),
    )
    stream = StreamingSimulator(sim, retain_windows=retain)
    started = time.perf_counter()
    report = stream.run(max_windows=windows)
    samples = sim.store.sample_count()
    elapsed = time.perf_counter() - started
    if resource is not None:
        # KiB on Linux, bytes on macOS.
        raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        peak_rss_mb = raw / (1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0)
    else:
        peak_rss_mb = 0.0
    return {
        "engine": "batch",
        "mode": "stream",
        "servers": servers,
        "windows": windows,
        "block_windows": block_windows,
        "retain_windows": retain,
        "elapsed_s": elapsed,
        "samples": samples,
        "hot_samples": sim.store.hot_sample_count(),
        "evicted_rows": report.evicted_rows,
        "windows_per_sec": windows / elapsed,
        "samples_per_sec": samples / elapsed,
        "peak_rss_mb": round(peak_rss_mb, 1),
        "stages": {k: round(v, 6) for k, v in sim.stage_seconds.items()},
    }


def _query_row(
    windows: int,
    servers: int,
    retain: int,
    block_windows: int,
) -> dict:
    """The ``--query-row`` subprocess body: hammer a live run, report.

    Streams the same run as the streaming row but with a query server
    attached, and measures the round-trip latency of live aggregate
    queries issued from a second thread WHILE the clock loop ingests —
    the number an operator watching ``repro query --watch`` actually
    experiences.  The p99 includes waits for the block mutation span
    (the lock seam readers queue behind), so it prices the consistency
    guarantee, not just the wire.
    """
    import threading

    import numpy as np

    from repro.cluster.streaming import StreamingSimulator
    from repro.telemetry.counters import Counter
    from repro.telemetry.query_server import QueryClient

    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=servers, seed=29
    )
    sim = Simulator(
        fleet,
        seed=29,
        config=SimulationConfig(engine="batch", block_windows=block_windows),
    )
    pool, counter = "B", Counter.REQUESTS.value
    stream = StreamingSimulator(
        sim,
        retain_windows=retain,
        track=((pool, counter, None, "mean"),),
        query_listen="127.0.0.1:0",
    )
    runner = threading.Thread(target=lambda: stream.run(max_windows=windows))
    latencies = []
    started = time.perf_counter()
    try:
        with QueryClient(stream.query_address, io_timeout=60) as client:
            runner.start()
            # Keep hammering while the run is live; a short post-run
            # tail guarantees a measurable sample even on smoke sizes.
            while runner.is_alive() or len(latencies) < 32:
                t0 = time.perf_counter()
                answer = client.aggregate(pool, counter)
                latencies.append(time.perf_counter() - t0)
        runner.join()
    finally:
        stream.close()
    elapsed = time.perf_counter() - started
    lat_ms = np.asarray(latencies) * 1000.0
    return {
        "mode": "query_latency",
        "servers": servers,
        "windows": windows,
        "block_windows": block_windows,
        "retain_windows": retain,
        "queries": int(lat_ms.size),
        "p50_ms": round(float(np.percentile(lat_ms, 50)), 4),
        "p99_ms": round(float(np.percentile(lat_ms, 99)), 4),
        "queries_per_sec": lat_ms.size / elapsed,
        "final_sealed_through": int(answer["sealed_through"]),
    }


def _measure_query_latency(
    windows: int = STREAM_WINDOWS,
    servers: int = STREAM_SERVERS,
    retain: int = STREAM_RETAIN,
    block_windows: int = STREAM_BLOCK,
) -> dict:
    """Run the query-latency row in a fresh subprocess, parse its JSON.

    A subprocess for the same reason as the streaming row: the hammer
    thread and the clock loop must share a machine state no earlier
    benchmark allocation distorts.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [
            sys.executable, str(Path(__file__).resolve()), "--query-row",
            "--windows", str(windows),
            "--servers", str(servers),
            "--retain", str(retain),
            "--block", str(block_windows),
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(completed.stdout)


def _measure_streaming(
    windows: int = STREAM_WINDOWS,
    servers: int = STREAM_SERVERS,
    retain: int = STREAM_RETAIN,
    block_windows: int = STREAM_BLOCK,
) -> dict:
    """Run the streaming row in a fresh subprocess and parse its JSON."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [
            sys.executable, str(Path(__file__).resolve()), "--stream-row",
            "--windows", str(windows),
            "--servers", str(servers),
            "--retain", str(retain),
            "--block", str(block_windows),
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(completed.stdout)


def run_benchmark(
    windows: int = WINDOWS,
    servers: int = SERVERS,
    legacy_windows: int = LEGACY_WINDOWS,
    per_sample_windows: int = PER_SAMPLE_WINDOWS,
    stream_windows: int = STREAM_WINDOWS,
    stream_servers: int = STREAM_SERVERS,
    stream_retain: int = STREAM_RETAIN,
    result_path: Optional[Path] = RESULT_PATH,
) -> dict:
    batch = _measure("batch", windows, servers)
    legacy = _measure("legacy", legacy_windows, servers)
    per_sample = _measure("per-sample", per_sample_windows, servers)
    configs = [
        _measure("batch", windows, servers, **config) for config in CONFIGS
    ]
    streaming = _measure_streaming(
        windows=stream_windows, servers=stream_servers, retain=stream_retain
    )
    query_latency = _measure_query_latency(
        windows=stream_windows, servers=stream_servers, retain=stream_retain
    )
    best = max(configs, key=lambda r: r["windows_per_sec"])
    speedup = batch["windows_per_sec"] / legacy["windows_per_sec"]
    result = {
        "benchmark": "sim_throughput",
        "fleet": {"pool": "B", "servers": servers, "windows": windows},
        "batch": batch,
        "legacy": legacy,
        "per_sample": per_sample,
        "configs": configs,
        "streaming": streaming,
        "query_latency": query_latency,
        "best": best,
        "best_speedup_vs_batch": best["windows_per_sec"] / batch["windows_per_sec"],
        "target_block_speedup": TARGET_BLOCK_SPEEDUP,
        "speedup_windows_per_sec": speedup,
        "target_speedup": TARGET_SPEEDUP,
    }
    if result_path is not None:
        result_path.write_text(json.dumps(result, indent=2) + "\n")
    return result


def run_backend_sweep(
    windows: int = BACKEND_SWEEP_WINDOWS,
    servers: int = BACKEND_SWEEP_SERVERS,
    shards: int = 4,
    block_windows: int = 64,
) -> list:
    """Small serial/threads/processes/tcp comparison at one sweep point.

    The fast local answer to "which backend should I use here?" —
    prints one line per backend, writes no JSON.
    """
    results = []
    for backend, workers in (
        ("serial", 1),
        ("threads", 4),
        ("processes", 1),
        ("tcp", 1),
    ):
        results.append(
            _measure(
                "batch",
                windows,
                servers,
                shards=shards,
                workers=workers,
                block_windows=block_windows,
                backend=backend,
            )
        )
    return results


def run_tcp_sweep(
    windows: int = BACKEND_SWEEP_WINDOWS,
    servers: int = BACKEND_SWEEP_SERVERS,
    block_windows: int = 64,
) -> list:
    """Loopback-TCP shard sweep: distribution cost vs shard count.

    One ``repro shard-server`` subprocess hosts every session; rows
    compare the unsharded baseline, the serial reference, and tcp at
    increasing shard counts — each shard count measured twice, once
    over the PR 4 wire (pickle frames, synchronous sends) and once
    with the current default (binary column frames + pipelined
    writers) — the `make bench-tcp` answer to "what does putting
    shards behind the network cost on this machine, and what does the
    transport optimisation buy back?".
    """
    results = [
        _measure("batch", windows, servers, block_windows=block_windows,
                 backend="serial", shards=4),
    ]
    for shards in (1, 2, 4):
        for pipeline_depth, binary_frames in ((0, False), (None, True)):
            results.append(
                _measure(
                    "batch",
                    windows,
                    servers,
                    shards=shards,
                    block_windows=block_windows,
                    backend="tcp",
                    pipeline_depth=pipeline_depth,
                    binary_frames=binary_frames,
                )
            )
    return results


def _config_label(entry: dict) -> str:
    label = (
        f"shards={entry['shards']} workers={entry['workers']} "
        f"block={entry['block_windows']} backend={entry['backend']}"
    )
    if entry.get("backend") == "tcp":
        label += (
            f" wire={entry.get('wire', 'pickle')}"
            f" pipeline={entry.get('pipeline_depth', 0)}"
        )
        if entry.get("replicas"):
            label += f" replicas={entry['replicas']}"
    return label


def _print_result(result: dict) -> None:
    batch = result["batch"]
    legacy = result["legacy"]
    print(
        f"batch engine:    {batch['windows_per_sec']:8.1f} windows/s "
        f"({batch['samples_per_sec']:,.0f} samples/s) over "
        f"{batch['windows']} windows x {batch['servers']} servers"
    )
    print(
        f"legacy engine:   {legacy['windows_per_sec']:8.1f} windows/s "
        f"({legacy['samples_per_sec']:,.0f} samples/s) over "
        f"{legacy['windows']} windows (extrapolated)"
    )
    per_sample = result["per_sample"]
    print(
        f"per-sample shim: {per_sample['windows_per_sec']:8.1f} windows/s "
        f"({per_sample['samples_per_sec']:,.0f} samples/s) over "
        f"{per_sample['windows']} windows (extrapolated)"
    )
    for entry in result["configs"]:
        print(
            f"  {_config_label(entry):48s} {entry['windows_per_sec']:8.1f} windows/s "
            f"({entry['samples_per_sec']:,.0f} samples/s)"
        )
    streaming = result.get("streaming")
    if streaming:
        print(
            f"  {'stream retain=' + str(streaming['retain_windows']) + ' block=' + str(streaming['block_windows']):48s} "
            f"{streaming['windows_per_sec']:8.1f} windows/s "
            f"({streaming['samples_per_sec']:,.0f} samples/s) over "
            f"{streaming['windows']} windows, peak rss "
            f"{streaming['peak_rss_mb']:.0f} MB, "
            f"{streaming['hot_samples']:,} of {streaming['samples']:,} "
            f"samples hot"
        )
    query_latency = result.get("query_latency")
    if query_latency:
        print(
            f"  {'live query latency':48s} "
            f"p50 {query_latency['p50_ms']:.2f} ms, "
            f"p99 {query_latency['p99_ms']:.2f} ms over "
            f"{query_latency['queries']:,} queries during a "
            f"{query_latency['windows']:,}-window streamed run"
        )
    best = result["best"]
    stages = best.get("stages", {})
    if any(stages.values()):
        total = sum(stages.values())
        breakdown = ", ".join(
            f"{name} {seconds:.3f}s ({seconds / total:.0%})"
            for name, seconds in stages.items()
        )
        print(f"best config stages: {breakdown}")
    print(
        f"best config: shards={best['shards']} workers={best['workers']} "
        f"block={best['block_windows']} backend={best['backend']} -> "
        f"{result['best_speedup_vs_batch']:.2f}x batch, "
        f"batch {result['speedup_windows_per_sec']:.1f}x legacy"
    )


def test_sim_throughput():
    result = run_benchmark()
    print()
    _print_result(result)
    print(f"-> {RESULT_PATH.name}")
    assert result["speedup_windows_per_sec"] >= TARGET_SPEEDUP
    assert result["best_speedup_vs_batch"] >= TARGET_BLOCK_SPEEDUP


def _argv_int(argv: list, flag: str, default: int) -> int:
    return int(argv[argv.index(flag) + 1]) if flag in argv else default


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--stream-row" in argv:
        # Subprocess entry of _measure_streaming: one JSON row on stdout.
        row = _stream_row(
            windows=_argv_int(argv, "--windows", STREAM_WINDOWS),
            servers=_argv_int(argv, "--servers", STREAM_SERVERS),
            retain=_argv_int(argv, "--retain", STREAM_RETAIN),
            block_windows=_argv_int(argv, "--block", STREAM_BLOCK),
        )
        print(json.dumps(row))
    elif "--query-row" in argv:
        # Subprocess entry of _measure_query_latency: one JSON row.
        row = _query_row(
            windows=_argv_int(argv, "--windows", STREAM_WINDOWS),
            servers=_argv_int(argv, "--servers", STREAM_SERVERS),
            retain=_argv_int(argv, "--retain", STREAM_RETAIN),
            block_windows=_argv_int(argv, "--block", STREAM_BLOCK),
        )
        print(json.dumps(row))
    elif "--backends" in argv:
        sweep = run_backend_sweep()
        print(
            f"backend sweep: {BACKEND_SWEEP_SERVERS} servers x "
            f"{BACKEND_SWEEP_WINDOWS} windows, 4 shards, block=64"
        )
        for entry in sweep:
            print(
                f"  {entry['backend']:10s} {entry['windows_per_sec']:8.1f} windows/s "
                f"({entry['samples_per_sec']:,.0f} samples/s)"
            )
    elif "--tcp" in argv:
        sweep = run_tcp_sweep()
        print(
            f"loopback-TCP sweep: {BACKEND_SWEEP_SERVERS} servers x "
            f"{BACKEND_SWEEP_WINDOWS} windows, block=64, one shard-server "
            f"subprocess hosting every session"
        )
        for entry in sweep:
            wire = (
                f" wire={entry['wire']:6s} pipeline={entry['pipeline_depth']}"
                if entry["backend"] == "tcp"
                else ""
            )
            print(
                f"  {entry['backend']:10s} shards={entry['shards']}{wire} "
                f"{entry['windows_per_sec']:8.1f} windows/s "
                f"({entry['samples_per_sec']:,.0f} samples/s)"
            )
    elif "--smoke" in argv:
        outcome = run_benchmark(
            windows=60,
            servers=100,
            legacy_windows=10,
            per_sample_windows=20,
            stream_windows=2000,
            stream_servers=32,
            stream_retain=256,
            result_path=None,
        )
        _print_result(outcome)
    else:
        outcome = run_benchmark()
        _print_result(outcome)
        print(f"results written to {RESULT_PATH}")
