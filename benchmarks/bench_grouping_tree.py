"""§II-A2 — the pool-predictability decision tree.

Paper protocol: a decision tree over server feature vectors (CPU
percentiles + pool percentile-regression coefficients), trained with
5-fold cross validation on operator-labelled pools (min leaf 2000
machines on their fleet).  Paper results: 34 splits, R^2 = 0.746,
AUC = 0.9804, and ~55 % of pools classified as tightly bound.

Our fleet is smaller, so the leaf size scales proportionally; the
reproduction targets are the AUC band and the predictable fraction.
"""

import numpy as np
import pytest

from repro.cluster.builders import build_grouping_study_fleet
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.grouping import GroupingModel
from repro.core.report import render_table


@pytest.fixture(scope="module")
def grouping_study():
    # ~55 % tight pools, as the paper found.
    fleet, labels = build_grouping_study_fleet(
        n_tight_pools=11, n_noisy_pools=9, servers_per_pool=16,
        n_datacenters=2, seed=131,
    )
    sim = Simulator(
        fleet, seed=131,
        config=SimulationConfig(apply_availability_policies=False),
    )
    sim.run_days(1)
    return sim.store, labels


def test_grouping_tree_cv(benchmark, grouping_study):
    store, labels = grouping_study

    def train():
        return GroupingModel(min_leaf_fraction=0.03).fit(
            store, labels, rng=np.random.default_rng(7)
        )

    model = benchmark(train)
    cv = model.cv_result
    predictable = model.predictable_fraction(store, sorted(labels))

    print()
    print(render_table(
        ["metric", "paper", "measured"],
        [
            ["AUC", "0.9804", f"{cv.auc:.4f}"],
            ["R^2 (probabilities)", "0.746", f"{cv.r2:.3f}"],
            ["tree splits", "34", str(model.tree.count_splits())],
            ["predictable pools", "55%", f"{predictable:.0%}"],
        ],
        title="Decision-tree pool classification (paper vs measured)",
    ))

    # Shape targets: high AUC, meaningful (not degenerate) tree, and a
    # predictable fraction near the planted 55 %.
    assert cv.auc > 0.93
    assert cv.r2 > 0.5
    assert 1 <= model.tree.count_splits() <= 60
    assert 0.35 <= predictable <= 0.75


def test_grouping_tree_feature_importance(benchmark, grouping_study):
    store, labels = grouping_study
    model = GroupingModel(min_leaf_fraction=0.03).fit(
        store, labels, rng=np.random.default_rng(8)
    )
    importances = benchmark(model.tree.feature_importances)
    # The noisy pools differ in CPU spread, so percentile features and
    # the pool-level regression stats must carry the signal.
    assert importances.sum() == pytest.approx(1.0)
    assert importances.max() > 0.2
