"""Table I — the micro-service catalogue.

Regenerates the table of micro-services running in server pools and
checks the catalogue's structural properties (each service has a
distinct cost/latency profile and a working demand model).
"""

import pytest

from repro.cluster.builders import peak_rps_per_server
from repro.cluster.hardware import GENERATION_2014
from repro.cluster.service import CATALOG_POOLS, service_catalog
from repro.core.report import render_table

PAPER_DESCRIPTIONS = {
    "A": "In-Memory Storage",
    "B": "spelling corrections",
    "C": "stateless processing modules",
    "D": "formatted web pages",
    "E": "load balancer",
    "F": "custom processing logic",
    "G": "metrics collection",
}


def test_table1_catalogue(benchmark):
    catalog = benchmark(service_catalog)

    rows = []
    for letter in CATALOG_POOLS:
        profile = catalog[letter]
        rows.append(
            [
                letter,
                profile.description[:58],
                f"{profile.cpu_cost_per_rps():.4f}",
                f"{profile.latency.base_ms:g}",
                f"{profile.slo_latency_ms:g}",
                f"{profile.availability_mean:.0%}",
            ]
        )
    print()
    print(
        render_table(
            ["Pool", "Description", "CPU %/RPS", "base ms", "SLO ms", "avail"],
            rows,
            title="Table I: micro-services in server pools",
        )
    )

    # Every paper service is present with a matching description.
    assert set(catalog) == set(CATALOG_POOLS)
    for letter, needle in PAPER_DESCRIPTIONS.items():
        assert needle.lower() in catalog[letter].description.lower()
    # Profiles are genuinely heterogeneous (distinct request costs).
    costs = {round(p.cpu_cost_per_rps(), 5) for p in catalog.values()}
    assert len(costs) == len(catalog)
    # Every profile supports the provisioning inversion used everywhere.
    for profile in catalog.values():
        assert peak_rps_per_server(profile, GENERATION_2014) > 0
