"""Fig 2 — resource counters versus workload for micro-service D.

The paper plots six counters against RPS across six datacenters and
reads off three behaviours: CPU (and network) track workload linearly
with low variance; disk reads and memory paging are background-
dominated vertical bands; the disk queue is static.  This bench
regenerates each series and asserts those relationships.
"""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.report import render_table
from repro.stats.regression import fit_linear
from repro.telemetry.counters import Counter
from benchmarks.conftest import RESOURCE_COUNTERS


@pytest.fixture(scope="module")
def fig2_sim():
    """Service D on separate pools in 6 datacenters, one day (as in Fig 2)."""
    fleet = build_single_pool_fleet(
        "D", n_datacenters=6, servers_per_deployment=12, seed=111
    )
    sim = Simulator(
        fleet,
        seed=111,
        config=SimulationConfig(
            counters=RESOURCE_COUNTERS, apply_availability_policies=False
        ),
    )
    sim.run_days(1)
    return sim


def _counter_vs_workload(store, counter, datacenter_id):
    rps = store.pool_window_aggregate("D", Counter.REQUESTS.value, datacenter_id)
    series = store.pool_window_aggregate("D", counter, datacenter_id)
    return rps.align_with(series)


def test_fig2_counters_vs_workload(benchmark, fig2_sim):
    store = fig2_sim.store
    datacenters = store.datacenters_for_pool("D")
    assert len(datacenters) == 6

    def analyze():
        out = {}
        for counter in (
            Counter.PROCESSOR_UTILIZATION.value,
            Counter.NETWORK_BYTES_TOTAL.value,
            Counter.NETWORK_PACKETS.value,
            Counter.DISK_READ_BYTES.value,
            Counter.MEMORY_PAGES.value,
            Counter.DISK_QUEUE_LENGTH.value,
        ):
            xs, ys = [], []
            for dc in datacenters:
                x, y = _counter_vs_workload(store, counter, dc)
                xs.append(x)
                ys.append(y)
            x = np.concatenate(xs)
            y = np.concatenate(ys)
            out[counter] = fit_linear(x, y)
        return out

    fits = benchmark(analyze)

    rows = [
        [name, f"{fit.slope:.3g}", f"{fit.r2:.3f}"]
        for name, fit in fits.items()
    ]
    print()
    print(
        render_table(
            ["Counter", "slope vs RPS", "R^2"],
            rows,
            title="Fig 2: counters vs workload, service D, 6 DCs",
        )
    )

    # CPU: tight linear relationship ("little variance across a range
    # of RPS, indicating RPS is a sufficiently accurate metric").
    assert fits[Counter.PROCESSOR_UTILIZATION.value].r2 > 0.9
    # Network: linear characteristic, but noisier around the line than
    # CPU ("we see more variation of bytes and packets").  Compare
    # scale-free residual spreads, since the counters have different
    # units and dynamic ranges.
    assert fits[Counter.NETWORK_BYTES_TOTAL.value].r2 > 0.5
    assert fits[Counter.NETWORK_PACKETS.value].r2 > 0.5

    def relative_residual(fit, counter):
        mean_level = fit.predict_scalar(60.0)  # mid-range RPS/server
        return fit.residual_std / mean_level

    assert relative_residual(
        fits[Counter.NETWORK_BYTES_TOTAL.value], None
    ) > relative_residual(fits[Counter.PROCESSOR_UTILIZATION.value], None)
    # Disk reads and paging: vertical bands — no workload correlation.
    assert fits[Counter.DISK_READ_BYTES.value].r2 < 0.1
    assert fits[Counter.MEMORY_PAGES.value].r2 < 0.1
    # Queue length: static in steady state.
    assert fits[Counter.DISK_QUEUE_LENGTH.value].r2 < 0.05


def test_fig2_disk_and_paging_correlated(benchmark, fig2_sim):
    """The paper infers disk activity is mostly paging: both counters
    move together even though neither tracks workload."""
    store = fig2_sim.store

    def correlate():
        disk = store.pool_window_aggregate("D", Counter.DISK_READ_BYTES.value, "DC1")
        pages = store.pool_window_aggregate("D", Counter.MEMORY_PAGES.value, "DC1")
        x, y = disk.align_with(pages)
        return float(np.corrcoef(x, y)[0, 1])

    corr = benchmark(correlate)
    print(f"\nFig 2 aside: corr(disk reads, memory pages) = {corr:.2f}")
    assert corr > 0.3
