"""Table IV — summary of server savings for the seven largest pools.

Paper aggregate: ~20 % efficiency savings + ~10 % online (availability)
savings = ~30 % total, at an average ~5 ms latency impact.  Per-pool:
heavily overprovisioned pools (B, D, E, F) around 33 % efficiency;
nearly right-sized pools (C, G) in single digits; pool B adds a large
online component because it is repurposed off-peak.
"""

import numpy as np
import pytest

from repro.analysis.savings import summarize_savings
from repro.cluster.service import service_catalog
from repro.core.planner import CapacityPlanner
from repro.core.slo import QoSRequirement


@pytest.fixture(scope="module")
def qos_by_pool():
    return {
        name: QoSRequirement(latency_p95_ms=profile.slo_latency_ms)
        for name, profile in service_catalog().items()
    }


def test_table4_savings_summary(benchmark, paper_store, qos_by_pool):
    def plan():
        planner = CapacityPlanner(
            paper_store, qos_by_pool, survive_dc_loss=True,
            rng=np.random.default_rng(3),
        )
        return planner.plan()

    fleet_plan = benchmark.pedantic(plan, rounds=1, iterations=1)
    summary = summarize_savings(fleet_plan)
    print()
    print(summary.render_comparison())

    # --- aggregate bands ---
    # Paper: 20 % efficiency / 10 % online / 30 % total; we assert the
    # 20-40 % headline band with generous tolerance for fleet scale.
    assert 0.10 <= summary.mean_efficiency <= 0.40
    assert 0.03 <= summary.mean_online <= 0.20
    assert 0.15 <= summary.mean_total <= 0.45
    assert summary.mean_latency_impact_ms < 10.0  # paper: ~5 ms

    # --- per-pool shape ---
    by_pool = {r.pool_id: r for r in summary.rows}
    # Overprovisioned pools beat the nearly right-sized ones.
    generous = np.mean([by_pool[p].efficiency_savings for p in "BDEF"])
    tight = np.mean([by_pool[p].efficiency_savings for p in "CG"])
    assert generous > tight + 0.1
    # Pool B's repurposing dominates online savings (paper: 27 %).
    assert by_pool["B"].online_savings == max(
        r.online_savings for r in summary.rows
    )
    assert by_pool["B"].online_savings > 0.15
    # Well-managed pools have no online savings to reclaim.
    for pool in "DFG":
        assert by_pool[pool].online_savings < 0.03
    # Pool B posts the largest total savings (paper: 60 %).
    assert by_pool["B"].total_savings == max(
        r.total_savings for r in summary.rows
    )


def test_table4_every_pool_validated(benchmark, paper_store, qos_by_pool):
    """Savings are only trustworthy when Step 1 passed for every pool."""
    from repro.core.metric_validation import MetricValidator

    validator = MetricValidator(paper_store)
    reports = benchmark.pedantic(
        validator.validate_all, rounds=1, iterations=1
    )
    for report in reports:
        assert report.status.is_valid, report.describe()
