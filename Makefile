# Development entry points.  Everything runs from the source tree via
# PYTHONPATH=src, so no install step is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke docs-check check

test:
	$(PYTHON) -m pytest -x -q

# Fast sanity pass over the throughput benchmark (small fleet, no JSON).
bench-smoke:
	$(PYTHON) benchmarks/bench_sim_throughput.py --smoke

# Full 1000x1000 benchmark; rewrites BENCH_sim_throughput.json.
bench:
	$(PYTHON) benchmarks/bench_sim_throughput.py

# Fails when README code blocks drift from the actual CLI flags.
docs-check:
	$(PYTHON) tools/docs_check.py

check: docs-check test
