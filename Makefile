# Development entry points.  Everything runs from the source tree via
# PYTHONPATH=src, so no install step is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-stream test-faults test-server bench bench-smoke bench-backends bench-tcp bench-check docs-check hygiene-check lint run-checks check

# The static gates run first so doc drift, a stale benchmark JSON,
# tracked build artifacts, or a lint invariant violation fail tier-1
# locally, before the (slower) pytest pass starts.  `run-checks` wraps
# docs-check, bench-check, hygiene-check and lint with uniform
# PASS/FAIL reporting; each also remains an individual target.  The
# legacy-engine equivalence baselines are opt-in (`pytest -m legacy`);
# see pytest.ini.
test: run-checks
	$(PYTHON) -m pytest -x -q

# The streaming suite on its own: streaming-vs-batch bit-identity
# across all four shard backends (including post-eviction reads and
# exports), the hot-memory bound, and the online regression alarm
# (all of it also rides in `make test`).
test-stream:
	$(PYTHON) -m pytest tests/test_streaming.py -q

# The fault-tolerance suite on its own: kill -9 against real
# shard-server subprocesses, restart/rejoin resync round-trips, and
# the injected-fault matrix (all of it also rides in `make test`).
test-faults:
	$(PYTHON) -m pytest tests/test_fault_tolerance.py -q

# The live-query-server suite on its own: bit-identity at every block
# boundary on all four backends, the concurrent hammer, and the
# kill-mid-query bound (all of it also rides in `make test`).
test-server:
	$(PYTHON) -m pytest tests/test_query_server.py -q

# Fast sanity pass over the throughput benchmark (small fleet, no JSON).
bench-smoke:
	$(PYTHON) benchmarks/bench_sim_throughput.py --smoke

# Small serial/threads/processes/tcp shard-backend comparison (no JSON).
bench-backends:
	$(PYTHON) benchmarks/bench_sim_throughput.py --backends

# Loopback-TCP shard sweep against a real `repro shard-server`
# subprocess: the distribution seam's cost by shard count (no JSON).
bench-tcp:
	$(PYTHON) benchmarks/bench_sim_throughput.py --tcp

# Full 1000x1000 benchmark; rewrites BENCH_sim_throughput.json.
bench:
	$(PYTHON) benchmarks/bench_sim_throughput.py

# Fails when README/docs drift from the actual CLI flags (both
# directions: stale flags mentioned, new flags undocumented).
docs-check:
	$(PYTHON) tools/docs_check.py

# Fails when BENCH_sim_throughput.json misses a row for any
# CLI-exposed engine or shard backend (lists imported from the code).
bench-check:
	$(PYTHON) tools/bench_check.py

# Fails when build artifacts (__pycache__, *.pyc, .pytest_cache,
# *.egg-info) are tracked by git.
hygiene-check:
	$(PYTHON) tools/hygiene_check.py

# AST-based invariant checks over src/repro: determinism (no hidden
# entropy or wall-clock reads), lock discipline (single-owner seam),
# rpc-surface (string dispatch resolves; query surface stays
# read-only), wire-capabilities (advertised == probed).  See
# docs/LINTING.md; `--json` gives machine-readable findings.
lint:
	$(PYTHON) tools/repro_lint

# All four checkers behind one entry point with uniform PASS/FAIL.
run-checks:
	$(PYTHON) tools/run_checks.py

check: run-checks test
