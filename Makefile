# Development entry points.  Everything runs from the source tree via
# PYTHONPATH=src, so no install step is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-faults bench bench-smoke bench-backends bench-tcp bench-check docs-check check

# docs-check and bench-check run first so doc drift and a stale
# benchmark JSON fail tier-1 locally, before the (slower) pytest pass
# starts.  The legacy-engine equivalence baselines are opt-in
# (`pytest -m legacy`); see pytest.ini.
test: docs-check bench-check
	$(PYTHON) -m pytest -x -q

# The fault-tolerance suite on its own: kill -9 against real
# shard-server subprocesses, restart/rejoin resync round-trips, and
# the injected-fault matrix (all of it also rides in `make test`).
test-faults:
	$(PYTHON) -m pytest tests/test_fault_tolerance.py -q

# Fast sanity pass over the throughput benchmark (small fleet, no JSON).
bench-smoke:
	$(PYTHON) benchmarks/bench_sim_throughput.py --smoke

# Small serial/threads/processes/tcp shard-backend comparison (no JSON).
bench-backends:
	$(PYTHON) benchmarks/bench_sim_throughput.py --backends

# Loopback-TCP shard sweep against a real `repro shard-server`
# subprocess: the distribution seam's cost by shard count (no JSON).
bench-tcp:
	$(PYTHON) benchmarks/bench_sim_throughput.py --tcp

# Full 1000x1000 benchmark; rewrites BENCH_sim_throughput.json.
bench:
	$(PYTHON) benchmarks/bench_sim_throughput.py

# Fails when README/docs drift from the actual CLI flags (both
# directions: stale flags mentioned, new flags undocumented).
docs-check:
	$(PYTHON) tools/docs_check.py

# Fails when BENCH_sim_throughput.json misses a row for any
# CLI-exposed engine or shard backend (lists imported from the code).
bench-check:
	$(PYTHON) tools/bench_check.py

check: docs-check test
