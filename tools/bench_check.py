"""Guard: the committed benchmark JSON covers every engine and backend.

``make test`` runs this before pytest, so a new simulation engine
(:data:`repro.cluster.simulation.ENGINES`) or shard backend
(:data:`repro.telemetry.sharding.BACKENDS`) cannot land without a row
in ``BENCH_sim_throughput.json`` pricing it — the perf trajectory
stays complete by construction instead of by reviewer vigilance.

The engine and backend lists are imported from the code, not repeated
here: adding ``"gpu"`` to ``ENGINES`` makes this check fail until
``make bench`` regenerates the JSON with a ``gpu`` row.

Usage: ``python tools/bench_check.py [path-to-json]``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster.simulation import ENGINES  # noqa: E402
from repro.telemetry.sharding import BACKENDS  # noqa: E402

DEFAULT_PATH = REPO_ROOT / "BENCH_sim_throughput.json"

#: Stage keys every benchmark row must break its elapsed time into.
STAGE_KEYS = ("demand", "observe", "ingest")


def check(path: Path) -> List[str]:
    """Every engine, every backend, and stage breakdowns: return errors."""
    if not path.exists():
        return [f"{path.name} missing — run `make bench` to generate it"]
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path.name} is not valid JSON: {exc}"]

    errors: List[str] = []
    configs = data.get("configs", [])
    engine_rows = [
        row
        for row in (data.get("batch"), data.get("legacy"), data.get("per_sample"))
        if row
    ] + configs

    engines_priced = {row.get("engine") for row in engine_rows}
    for engine in ENGINES:
        if engine not in engines_priced:
            errors.append(
                f"no benchmark row for engine {engine!r} "
                f"(have: {sorted(engines_priced)})"
            )

    backends_priced = {row.get("backend") for row in configs}
    for backend in BACKENDS:
        if backend not in backends_priced:
            errors.append(
                f"no sweep row for shard backend {backend!r} "
                f"(have: {sorted(backends_priced)})"
            )

    # Replication is a distinct price point (every ingest frame goes
    # out twice): the sweep must keep a replicated-tcp row alongside
    # the plain tcp ones.
    if not any(
        row.get("backend") == "tcp" and row.get("replicas", 0) >= 1
        for row in configs
    ):
        errors.append(
            "no sweep row for replicated tcp (backend 'tcp' with "
            "replicas >= 1) — regenerate with `make bench`"
        )

    for row in engine_rows:
        stages = row.get("stages")
        if not isinstance(stages, dict) or set(stages) != set(STAGE_KEYS):
            errors.append(
                f"row engine={row.get('engine')!r} "
                f"backend={row.get('backend')!r} lacks a "
                f"{'/'.join(STAGE_KEYS)} stage breakdown — regenerate "
                f"with `make bench`"
            )

    # Streaming mode is a distinct operating regime (clock loop +
    # rolling retention): the JSON must price it with a stage breakdown
    # and a *measured* peak RSS — the standing evidence that a long
    # horizon streams with bounded hot memory.
    streaming = data.get("streaming")
    if not isinstance(streaming, dict):
        errors.append(
            "no 'streaming' row (simulate --stream) — regenerate with "
            "`make bench`"
        )
    else:
        stages = streaming.get("stages")
        if not isinstance(stages, dict) or set(stages) != set(STAGE_KEYS):
            errors.append(
                f"streaming row lacks a {'/'.join(STAGE_KEYS)} stage "
                f"breakdown — regenerate with `make bench`"
            )
        rss = streaming.get("peak_rss_mb")
        if not isinstance(rss, (int, float)) or rss <= 0:
            errors.append(
                "streaming row lacks a measured peak_rss_mb — "
                "regenerate with `make bench` on a POSIX host"
            )
        if not isinstance(streaming.get("retain_windows"), int):
            errors.append("streaming row lacks retain_windows")

    # The live query server is part of the streaming regime's contract:
    # the JSON must price what an operator's live aggregate query costs
    # (p50/p99 round-trip against a streaming run, lock waits included).
    query_latency = data.get("query_latency")
    if not isinstance(query_latency, dict):
        errors.append(
            "no 'query_latency' row (live repro-query hammer) — "
            "regenerate with `make bench`"
        )
    else:
        for key in ("p50_ms", "p99_ms"):
            value = query_latency.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                errors.append(
                    f"query_latency row lacks a measured {key} — "
                    f"regenerate with `make bench`"
                )
        if not isinstance(query_latency.get("windows"), int):
            errors.append("query_latency row lacks windows")
    return errors


def main(argv: List[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    errors = check(path)
    if errors:
        for error in errors:
            print(f"bench-check: {error}", file=sys.stderr)
        return 1
    print(
        f"bench-check: {path.name} covers engines {list(ENGINES)} "
        f"and backends {list(BACKENDS)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
