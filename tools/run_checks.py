"""One entry point for every repo checker, with uniform PASS/FAIL.

Runs the four static gates in order — ``docs-check`` (README/docs vs
the live CLI parser), ``bench-check`` (benchmark JSON covers every
engine/backend), ``hygiene-check`` (no tracked build artifacts), and
``lint`` (the ``tools/repro_lint`` invariant passes) — and prints one
``[PASS]``/``[FAIL]`` line per checker plus a summary.  Every checker
keeps printing its own findings to stderr exactly as when run alone,
and each remains available as an individual Make target
(``make docs-check`` etc.); this wrapper only adds the uniform
reporting and a single exit code.

Usage: ``python tools/run_checks.py [--only NAME ...]`` where NAME is
one of ``docs``, ``bench``, ``hygiene``, ``lint``.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path
from typing import Callable, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _load(module_name: str, path: Path):
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    # dataclass processing resolves string annotations through
    # sys.modules[cls.__module__], so register before executing.
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


def _run_docs() -> int:
    return _load("docs_check", REPO_ROOT / "tools" / "docs_check.py").main()


def _run_bench() -> int:
    module = _load("bench_check", REPO_ROOT / "tools" / "bench_check.py")
    return module.main(["bench_check"])


def _run_hygiene() -> int:
    return _load(
        "hygiene_check", REPO_ROOT / "tools" / "hygiene_check.py"
    ).main()


def _run_lint() -> int:
    module = _load(
        "repro_lint_engine", REPO_ROOT / "tools" / "repro_lint" / "engine.py"
    )
    return module.main([])


#: Checker name -> (label used in Make targets, runner).
CHECKS: List[tuple] = [
    ("docs", "docs-check", _run_docs),
    ("bench", "bench-check", _run_bench),
    ("hygiene", "hygiene-check", _run_hygiene),
    ("lint", "repro-lint", _run_lint),
]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_checks",
        description="Run every repo checker with uniform PASS/FAIL output.",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        choices=[name for name, _, _ in CHECKS],
        help="run only this checker (repeatable): "
        + ", ".join(name for name, _, _ in CHECKS),
    )
    args = parser.parse_args(argv)

    selected = [
        (name, label, runner)
        for name, label, runner in CHECKS
        if args.only is None or name in args.only
    ]
    failures: List[str] = []
    for name, label, runner in selected:
        try:
            code = runner()
        except Exception as error:  # a crashed checker is a failure too
            print(f"run-checks: {label} crashed: {error}", file=sys.stderr)
            code = 1
        verdict = "PASS" if code == 0 else "FAIL"
        print(f"[{verdict}] {label}")
        if code != 0:
            failures.append(label)

    if failures:
        print(
            f"run-checks: {len(failures)}/{len(selected)} checker(s) "
            f"failed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(f"run-checks: all {len(selected)} checker(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
