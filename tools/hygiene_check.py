"""Fail when build artifacts are tracked by git.

PR 7 accidentally committed ``__pycache__/*.pyc`` files; this guard
(part of ``make test``) keeps them from ever reappearing: it scans
``git ls-files`` for bytecode caches, pytest caches, and egg-info
directories.  The root ``.gitignore`` prevents the accident, this
check catches a force-add or an ignore-file regression.

Run via ``make hygiene-check`` or directly:
``python tools/hygiene_check.py``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Path fragments that must never be tracked.
FORBIDDEN = ("__pycache__/", ".pytest_cache/", ".egg-info/")
#: File suffixes that must never be tracked.
FORBIDDEN_SUFFIXES = (".pyc", ".pyo")


def tracked_artifacts() -> list:
    """Every tracked path that matches a forbidden pattern."""
    listing = subprocess.run(
        ["git", "ls-files", "-z"],
        cwd=REPO_ROOT,
        capture_output=True,
        check=True,
    )
    offenders = []
    for path in listing.stdout.decode().split("\0"):
        if not path:
            continue
        if path.endswith(FORBIDDEN_SUFFIXES) or any(
            fragment in path for fragment in FORBIDDEN
        ):
            offenders.append(path)
    return offenders


def main() -> int:
    try:
        offenders = tracked_artifacts()
    except (OSError, subprocess.CalledProcessError) as error:
        print(f"hygiene-check: cannot list tracked files: {error}",
              file=sys.stderr)
        return 1
    if offenders:
        for path in offenders:
            print(f"hygiene-check: build artifact is tracked: {path}",
                  file=sys.stderr)
        print(
            f"hygiene-check: {len(offenders)} tracked artifact(s) — "
            f"`git rm --cached` them (they are .gitignore'd)",
            file=sys.stderr,
        )
        return 1
    print("hygiene-check: no tracked build artifacts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
