"""wire-capabilities: advertised capabilities and probe sites agree.

Session capability negotiation is stringly typed on both sides: the
serve loop answers a ``protocol_capabilities`` probe with
:data:`SESSION_CAPABILITIES`, and clients read specific keys out of the
reply (``capabilities.get("binary_ingest", False)``).  A typo'd key, a
capability advertised but never implemented, or a probe for a
capability no server advertises all degrade silently to the
compatibility path — which is exactly the kind of quiet drift that
erodes the upgrade story.  This pass checks both directions across
``workers.py`` and ``transport.py``:

* every probed capability key must be advertised in
  ``SESSION_CAPABILITIES``;
* every advertised capability must have at least one probe or handler
  site (a string occurrence outside the advertisement itself — e.g.
  the serve loop's ``_method == "resync"`` branch).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from astutil import SourceFile, str_const

RULE_NAME = "wire-capabilities"

WORKERS = "src/repro/telemetry/workers.py"
TRANSPORT = "src/repro/telemetry/transport.py"
CAPABILITIES_CONSTANT = "SESSION_CAPABILITIES"

Findings = List[Tuple[str, int, str]]


def _advertised(
    workers: SourceFile,
) -> Tuple[Optional[Dict[str, int]], Optional[Tuple[int, int]]]:
    """Capability -> lineno, plus the advertisement's line span."""
    for node in workers.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == CAPABILITIES_CONSTANT
            for t in node.targets
        ):
            continue
        if not isinstance(node.value, ast.Dict):
            return None, None
        caps: Dict[str, int] = {}
        for key in node.value.keys:
            name = str_const(key) if key is not None else None
            if name is not None:
                caps[name] = key.lineno
        span = (node.lineno, node.end_lineno or node.lineno)
        return caps, span
    return None, None


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _probes(src: SourceFile) -> List[Tuple[str, int]]:
    """``(key, lineno)`` for every ``<capabilities>.get("key", ...)``."""
    out: List[Tuple[str, int]] = []
    for node in ast.walk(src.tree):
        if not (isinstance(node, ast.Call) and node.args):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "get"):
            continue
        receiver = _terminal_name(func.value)
        if receiver is None or "capabilit" not in receiver.lower():
            continue
        key = str_const(node.args[0])
        if key is not None:
            out.append((key, node.lineno))
    return out


def _string_sites(
    src: SourceFile, exclude_span: Optional[Tuple[int, int]]
) -> Set[str]:
    """Every string constant in the file, outside ``exclude_span``."""
    strings: Set[str] = set()
    for node in ast.walk(src.tree):
        value = str_const(node)
        if value is None:
            continue
        if exclude_span is not None and (
            exclude_span[0] <= node.lineno <= exclude_span[1]
        ):
            continue
        strings.add(value)
    return strings


def run(files: Dict[str, SourceFile]) -> Findings:
    workers = files.get(WORKERS)
    if workers is None:
        return []
    findings: Findings = []

    caps, span = _advertised(workers)
    if caps is None:
        findings.append((
            workers.rel,
            1,
            f"must define {CAPABILITIES_CONSTANT} as a literal dict of "
            f"capability-name strings",
        ))
        return findings

    sources = [workers]
    transport = files.get(TRANSPORT)
    if transport is not None:
        sources.append(transport)

    probed: Set[str] = set()
    for src in sources:
        for key, line in _probes(src):
            probed.add(key)
            if key not in caps:
                findings.append((
                    src.rel,
                    line,
                    f"probes capability {key!r}, which "
                    f"{CAPABILITIES_CONSTANT} does not advertise — the "
                    f"probe can never succeed",
                ))

    handler_strings: Set[str] = set()
    for src in sources:
        exclude = span if src is workers else None
        handler_strings |= _string_sites(src, exclude)

    for cap in sorted(caps):
        if cap not in probed and cap not in handler_strings:
            findings.append((
                workers.rel,
                caps[cap],
                f"advertises capability {cap!r}, but no probe or handler "
                f"site in workers.py/transport.py ever uses it",
            ))
    return findings
