"""repro-lint: AST-based invariant checks for the repro codebase.

The engine and the rule passes live side by side in this directory and
import each other as plain top-level modules (``import astutil``), so
the tool runs without installation: ``python tools/repro_lint`` puts
this directory on ``sys.path`` and executes ``__main__.py``.

See ``docs/LINTING.md`` for the invariants each pass enforces and the
suppression syntax.
"""
