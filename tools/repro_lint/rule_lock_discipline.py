"""lock-discipline: the single-owner lock seam must hold statically.

PR 9's consistency argument has two halves, and both are pure code
shape:

* ``MetricStore`` and ``ShardedMetricStore`` expose ``.lock`` but must
  never acquire it in their own methods.  The owner is whoever drives
  the store (the streaming clock loop holds it across each whole
  ingest->seal->evict block span); a store method that self-locks would
  deadlock-proof nothing and re-introduce torn reads at finer
  granularity than a block boundary.
* Every public read on ``LiveQuerySurface`` must execute under
  ``with self._lock:`` — that is what confines live readers to sealed
  block boundaries.  A public method whose body is not a single lock
  hold (after the docstring) can observe a half-ingested block.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from astutil import SourceFile, method_defs

RULE_NAME = "lock-discipline"

#: Classes bound by the never-self-lock half of the contract.
STORE_CLASSES = {"MetricStore", "ShardedMetricStore"}
#: The class bound by the always-lock half.
SURFACE_CLASS = "LiveQuerySurface"
_LOCK_ATTRS = {"lock", "_lock"}


def _is_self_lock(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr in _LOCK_ATTRS
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _check_store_class(
    src: SourceFile, cls: ast.ClassDef, out: List[Tuple[str, int, str]]
) -> None:
    for node in ast.walk(cls):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _is_self_lock(item.context_expr):
                    out.append((
                        src.rel,
                        node.lineno,
                        f"{cls.name} must never take its own lock — the "
                        f"lock is single-owner (held by the driving loop); "
                        f"remove this `with self.lock:`",
                    ))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("acquire", "release")
                and _is_self_lock(func.value)
            ):
                out.append((
                    src.rel,
                    node.lineno,
                    f"{cls.name} must never {func.attr} its own lock — "
                    f"the lock is single-owner (held by the driving loop)",
                ))


def _body_is_lock_hold(fn: ast.FunctionDef) -> bool:
    body = list(fn.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    return (
        len(body) == 1
        and isinstance(body[0], ast.With)
        and any(_is_self_lock(item.context_expr) for item in body[0].items)
    )


def _check_surface_class(
    src: SourceFile, cls: ast.ClassDef, out: List[Tuple[str, int, str]]
) -> None:
    for name, fn in method_defs(cls).items():
        if name.startswith("_"):
            continue
        if not _body_is_lock_hold(fn):
            out.append((
                src.rel,
                fn.lineno,
                f"{cls.name}.{name} must be exactly one `with self._lock:` "
                f"block (after the docstring) — anything outside the hold "
                f"can observe a half-ingested block",
            ))


def run(files: Dict[str, SourceFile]) -> List[Tuple[str, int, str]]:
    findings: List[Tuple[str, int, str]] = []
    for src in files.values():
        for node in src.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in STORE_CLASSES:
                _check_store_class(src, node, findings)
            elif node.name == SURFACE_CLASS:
                _check_surface_class(src, node, findings)
    return findings
