"""determinism: no hidden entropy or wall-clock reads under src/repro.

The repo's north-star guarantee is bit-identical results for the same
seed across engines, shard backends, and streaming vs batch.  One
``time.time()`` in a value path, one draw from the process-global
``random`` module, or one unseeded ``np.random.default_rng()`` breaks
that silently.  This pass forbids:

* wall-clock value reads (``time.time``/``time.time_ns``) and
  ``datetime.now``/``utcnow``/``today`` — simulated time must come
  from the simulation clock;
* the stdlib ``random`` module entirely (one hidden global RNG shared
  across threads);
* legacy ``numpy.random.<dist>`` globals (``np.random.shuffle``,
  ``np.random.seed``, ``RandomState``, ...) — same hidden-global
  problem in numpy clothing;
* ``np.random.default_rng()`` with no arguments (a fresh OS-entropy
  stream every run).

``time.perf_counter`` is a duration meter, not a value source, but it
still leaks host timing into anything that stores it — it is allowed
only at the stage-timer seams listed in :data:`PERF_COUNTER_ALLOWLIST`.
``time.monotonic``/``time.sleep`` stay legal: I/O deadlines and retry
pacing never feed results.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from astutil import SourceFile

RULE_NAME = "determinism"

#: Files (relative to ``src/repro``) whose stage timers may read
#: ``time.perf_counter`` — the simulation's per-stage breakdown and the
#: CLI's elapsed-time report.  Timers there annotate output, they never
#: enter stored telemetry values.
PERF_COUNTER_ALLOWLIST = {"cli.py", "cluster/simulation.py"}

_WALL_CLOCK = {"time.time", "time.time_ns"}
_PERF_COUNTER = {"time.perf_counter", "time.perf_counter_ns"}
_DATETIME = {
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}
#: ``numpy.random`` attributes that are explicitly seeded constructions
#: rather than draws from the hidden legacy global state.
_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64",
}
_TRACKED_ROOTS = ("time", "datetime", "random", "numpy")


def _alias_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin, for the modules this pass tracks."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    bound, origin = alias.asname, alias.name
                else:
                    bound = origin = alias.name.split(".")[0]
                if origin.split(".")[0] in _TRACKED_ROOTS:
                    aliases[bound] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            if node.module.split(".")[0] not in _TRACKED_ROOTS:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def _resolve(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted origin of a Name/Attribute chain, via the alias map."""
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    if isinstance(node, ast.Attribute):
        base = _resolve(node.value, aliases)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def _check_file(src: SourceFile, out: List[Tuple[str, int, str]]) -> None:
    aliases = _alias_map(src.tree)
    seen = set()

    def emit(line: int, message: str) -> None:
        if (line, message) not in seen:
            seen.add((line, message))
            out.append((src.rel, line, message))

    for node in ast.walk(src.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    emit(
                        node.lineno,
                        "the stdlib `random` module is one hidden global "
                        "RNG shared across threads — use a seeded "
                        "`numpy.random.Generator` instead",
                    )
        elif isinstance(node, ast.ImportFrom) and not node.level:
            module = node.module or ""
            if module.split(".")[0] == "random":
                emit(
                    node.lineno,
                    "importing from the stdlib `random` module pulls from "
                    "one hidden global RNG — use a seeded "
                    "`numpy.random.Generator` instead",
                )
            elif module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _NP_RANDOM_OK:
                        emit(
                            node.lineno,
                            f"legacy global `numpy.random.{alias.name}` "
                            f"draws from hidden shared state — use "
                            f"`numpy.random.default_rng(seed)`",
                        )

    for node in ast.walk(src.tree):
        if not isinstance(node, (ast.Name, ast.Attribute)):
            continue
        origin = _resolve(node, aliases)
        if origin is None:
            continue
        if origin in _WALL_CLOCK or origin in _DATETIME:
            emit(
                node.lineno,
                f"wall-clock read `{origin}` makes results depend on when "
                f"the run happens — thread time through the simulation "
                f"clock instead",
            )
        elif origin in _PERF_COUNTER:
            if src.repro_rel not in PERF_COUNTER_ALLOWLIST:
                allowed = ", ".join(sorted(PERF_COUNTER_ALLOWLIST))
                emit(
                    node.lineno,
                    f"`time.perf_counter` is allowlisted only for the "
                    f"stage timers in {allowed}",
                )
        else:
            parts = origin.split(".")
            if (
                len(parts) == 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] not in _NP_RANDOM_OK
            ):
                emit(
                    node.lineno,
                    f"legacy global `numpy.random.{parts[2]}` draws from "
                    f"hidden shared state — use "
                    f"`numpy.random.default_rng(seed)`",
                )

    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        origin = _resolve(node.func, aliases)
        if (
            origin == "numpy.random.default_rng"
            and not node.args
            and not node.keywords
        ):
            emit(
                node.lineno,
                "`np.random.default_rng()` without a seed draws fresh OS "
                "entropy every run — pass an explicit seed",
            )


def run(files: Dict[str, SourceFile]) -> List[Tuple[str, int, str]]:
    findings: List[Tuple[str, int, str]] = []
    for src in files.values():
        _check_file(src, findings)
    return findings
