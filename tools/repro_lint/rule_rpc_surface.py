"""rpc-surface: string-dispatched method names must resolve, and the
query surface must stay read-only.

The shard and query protocols dispatch by *string*: a client sends
``("call", names, "pool_matrix", args, kwargs)`` and the serve loop
resolves it with ``getattr(store, method)``; ingest rides as buffered
``("record_columns", args)`` command tuples; replica fan-out and
journal replay do ``getattr(member, method)``.  None of that is
checked by the import system — a renamed store method keeps compiling
and only fails on the wire.  This pass extracts every string method
name at those sites and cross-checks it against the AST-defined method
sets of the classes it will resolve against.

It also guards the query server's read-only contract.  The
``LiveQuerySurface`` enforces read-only *by omission* (no mutator
passthroughs, so a mutator call is an ``AttributeError`` shipped back
as the RPC error), and ``query_server.STORE_MUTATORS`` is the explicit
deny-list naming what must stay omitted.  Three directions are
checked: every statically detected mutator on
``MetricStore``/``ShardedMetricStore`` must be listed (a new mutator
cannot land unacknowledged), no listed name may appear on the surface
(readers must not be able to reach it), and every listed name must
still exist on a store (the list cannot go stale).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from astutil import (
    SourceFile,
    find_class,
    method_defs,
    mutating_methods,
    public_surface,
    self_attr_root,
    str_const,
    string_method_calls,
)

RULE_NAME = "rpc-surface"

STORE = "src/repro/telemetry/store.py"
SHARDING = "src/repro/telemetry/sharding.py"
WORKERS = "src/repro/telemetry/workers.py"
QUERY = "src/repro/telemetry/query_server.py"

#: Wire verbs the serve loop answers itself, before ``getattr``.
RESERVED_WIRE_METHODS = {"resync", "protocol_capabilities"}
#: Classes whose union is the client-proxy surface ``getattr(member,
#: method)`` resolves against (replica fan-out, journal replay).
CLIENT_CLASSES = (
    "_ShardQuerySurface",
    "ShardClient",
    "ShardWorker",
    "TcpShardClient",
    "ReplicatedShardClient",
)
#: The deny-list constant the query server must define.
MUTATOR_CONSTANT = "STORE_MUTATORS"
#: ``self.<attr>`` writes that are memoization/lazy-init, not logical
#: store mutations (aggregate caches, partition plans, executors).
CACHE_ATTRS = {"_agg_cache", "_partition_cache", "_executor"}

Findings = List[Tuple[str, int, str]]


def _class_surface(
    src: Optional[SourceFile], class_name: str
) -> Optional[Set[str]]:
    if src is None:
        return None
    cls = find_class(src.tree, class_name)
    if cls is None:
        return None
    return set(method_defs(cls))


def _literal_str_set(tree: ast.Module, name: str) -> Optional[Set[str]]:
    """The value of ``name = frozenset({...})`` (or a bare set/tuple)."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("frozenset", "set")
            and len(value.args) == 1
        ):
            value = value.args[0]
        try:
            literal = ast.literal_eval(value)
        except ValueError:
            return None
        if all(isinstance(item, str) for item in literal):
            return set(literal)
    return None


def _check_workers_dispatch(
    workers: SourceFile,
    metric_surface: Set[str],
    client_surface: Set[str],
    out: Findings,
) -> None:
    legal = metric_surface | RESERVED_WIRE_METHODS
    for name, line in string_method_calls(workers.tree, "call"):
        if name not in legal:
            out.append((
                workers.rel,
                line,
                f"dispatches method {name!r} over the wire, but MetricStore "
                f"defines no such method and it is not a reserved verb",
            ))
    for name, line in string_method_calls(workers.tree, "_fan_out"):
        if name not in client_surface | RESERVED_WIRE_METHODS:
            out.append((
                workers.rel,
                line,
                f"fans out method {name!r} to replica members, but no "
                f"client class defines it",
            ))
    for node in ast.walk(workers.tree):
        if not (isinstance(node, ast.Call) and node.args):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "append"):
            continue
        if self_attr_root(func.value) != "_pending":
            continue
        tuple_arg = node.args[0]
        if not (isinstance(tuple_arg, ast.Tuple) and tuple_arg.elts):
            continue
        name = str_const(tuple_arg.elts[0])
        if name is not None and name not in metric_surface:
            out.append((
                workers.rel,
                node.lineno,
                f"buffers command {name!r} for replay via getattr(store, "
                f"method), but MetricStore defines no such method",
            ))


def _check_sharding_dispatch(
    sharding: SourceFile,
    metric_surface: Set[str],
    client_surface: Set[str],
    out: Findings,
) -> None:
    for node in ast.walk(sharding.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else None
        if attr == "_dispatch" and len(node.args) >= 2:
            name = str_const(node.args[1])
            if name is not None and name not in metric_surface:
                out.append((
                    sharding.rel,
                    node.lineno,
                    f"dispatches method {name!r} to shards, but MetricStore "
                    f"defines no such method",
                ))
        elif attr == "append" and len(node.args) >= 2:
            # Journal appends: self._journals[i].append("method", args, n)
            # or `for journal in ...: journal.append(...)`.
            is_journal = self_attr_root(func.value) == "_journals" or (
                isinstance(func.value, ast.Name)
                and "journal" in func.value.id
            )
            if not is_journal:
                continue
            name = str_const(node.args[0])
            if name is None:
                continue
            if name not in metric_surface:
                out.append((
                    sharding.rel,
                    node.lineno,
                    f"journals command {name!r}, but MetricStore defines "
                    f"no such method to replay it against",
                ))
            elif name not in client_surface:
                out.append((
                    sharding.rel,
                    node.lineno,
                    f"journals command {name!r}, but no client class "
                    f"defines it — rejoin replay would fail",
                ))


def _check_query_dispatch(
    query: SourceFile, live_surface: Set[str], out: Findings
) -> None:
    legal = live_surface | RESERVED_WIRE_METHODS
    for name, line in string_method_calls(query.tree, "call"):
        if name not in legal:
            out.append((
                query.rel,
                line,
                f"dispatches method {name!r} to the query server, but "
                f"LiveQuerySurface defines no such method",
            ))


def _check_surface_delegation(
    query: SourceFile,
    live_cls: ast.ClassDef,
    metric_surface: Set[str],
    sharded_surface: Optional[Set[str]],
    out: Findings,
) -> None:
    for node in ast.walk(live_cls):
        if not isinstance(node, ast.Attribute):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Attribute)
            and value.attr == "_store"
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            continue
        name = node.attr
        missing = [
            cls_name
            for cls_name, surface in (
                ("MetricStore", metric_surface),
                ("ShardedMetricStore", sharded_surface),
            )
            if surface is not None and name not in surface
        ]
        for cls_name in missing:
            out.append((
                query.rel,
                node.lineno,
                f"LiveQuerySurface delegates to store.{name}, but "
                f"{cls_name} defines no such attribute — the surface must "
                f"work over both store kinds",
            ))


def _check_mutator_contract(
    query: SourceFile,
    live_cls: Optional[ast.ClassDef],
    store_classes: List[Tuple[str, SourceFile, ast.ClassDef]],
    out: Findings,
) -> None:
    denylist = _literal_str_set(query.tree, MUTATOR_CONSTANT)
    if denylist is None:
        out.append((
            query.rel,
            1,
            f"must define {MUTATOR_CONSTANT} as a literal frozenset of "
            f"store mutator names — it is the read-only contract this "
            f"pass checks the surface against",
        ))
        return

    all_methods: Set[str] = set()
    for cls_name, src, cls in store_classes:
        all_methods |= set(method_defs(cls))
        detected = mutating_methods(cls, CACHE_ATTRS)
        for name in sorted(detected):
            if name.startswith("_") or name in denylist:
                continue
            out.append((
                src.rel,
                method_defs(cls)[name].lineno,
                f"{cls_name}.{name} mutates store state but is not listed "
                f"in {MUTATOR_CONSTANT} (query_server.py) — acknowledge it "
                f"there and keep it off LiveQuerySurface",
            ))

    if live_cls is not None:
        exposed = denylist & public_surface(live_cls)
        for name in sorted(exposed):
            out.append((
                query.rel,
                method_defs(live_cls)[name].lineno,
                f"LiveQuerySurface exposes {name!r}, which "
                f"{MUTATOR_CONSTANT} declares a mutator — live readers "
                f"must never reach a mutator",
            ))

    if store_classes:
        for name in sorted(denylist - all_methods):
            out.append((
                query.rel,
                1,
                f"{MUTATOR_CONSTANT} lists {name!r}, but no store class "
                f"defines it — the deny-list is stale",
            ))


def run(files: Dict[str, SourceFile]) -> Findings:
    findings: Findings = []
    store_src = files.get(STORE)
    sharding_src = files.get(SHARDING)
    workers_src = files.get(WORKERS)
    query_src = files.get(QUERY)

    metric_surface = _class_surface(store_src, "MetricStore")
    sharded_surface = _class_surface(sharding_src, "ShardedMetricStore")

    client_surface: Set[str] = set()
    if workers_src is not None:
        for cls_name in CLIENT_CLASSES:
            client_surface |= _class_surface(workers_src, cls_name) or set()

    if workers_src is not None and metric_surface is not None:
        _check_workers_dispatch(
            workers_src, metric_surface, client_surface, findings
        )
    if sharding_src is not None and metric_surface is not None:
        _check_sharding_dispatch(
            sharding_src, metric_surface, client_surface, findings
        )

    live_cls = None
    if query_src is not None:
        live_cls = find_class(query_src.tree, "LiveQuerySurface")
    if query_src is not None and live_cls is not None:
        _check_query_dispatch(query_src, set(method_defs(live_cls)), findings)
        if metric_surface is not None:
            _check_surface_delegation(
                query_src, live_cls, metric_surface, sharded_surface, findings
            )

    if query_src is not None:
        store_classes: List[Tuple[str, SourceFile, ast.ClassDef]] = []
        if store_src is not None:
            cls = find_class(store_src.tree, "MetricStore")
            if cls is not None:
                store_classes.append(("MetricStore", store_src, cls))
        if sharding_src is not None:
            cls = find_class(sharding_src.tree, "ShardedMetricStore")
            if cls is not None:
                store_classes.append(("ShardedMetricStore", sharding_src, cls))
        if store_classes or live_cls is not None:
            _check_mutator_contract(
                query_src, live_cls, store_classes, findings
            )
    return findings
