"""repro-lint engine: rule registry, file walk, suppressions, output.

The engine parses every ``src/repro/**/*.py`` file once, hands the
parsed-file map to each registered rule pass, and post-processes the
findings against ``# repro-lint: disable=<rule>`` suppression comments
(same-line; comma-separate to silence several rules).  A suppression
that silences nothing is itself a finding (``unused-suppression``), so
stale opt-outs cannot accumulate.

Exit codes match the other checkers (``docs_check``/``bench_check``):
0 clean, 1 findings, and findings go to stderr one per line.  Pass
``--json`` for a machine-readable report on stdout, ``--only RULE``
(repeatable) to run a subset, ``--root DIR`` to lint a different tree
(the test suite lints mutated copies this way).

Run via ``make lint`` (part of ``make test``) or directly:
``python tools/repro_lint [--json]``.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import importlib
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

_HERE = Path(__file__).resolve().parent
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

from astutil import SourceFile  # noqa: E402

REPO_ROOT = _HERE.parent.parent

#: The rule registry: module name -> imported lazily by
#: :func:`load_rules`.  A new pass is one module with a ``RULE_NAME``
#: string and a ``run(files) -> [(rel_path, line, message), ...]``
#: function, plus one entry here.
RULE_MODULES = (
    "rule_determinism",
    "rule_lock_discipline",
    "rule_rpc_surface",
    "rule_wire_capabilities",
)

_SUPPRESS = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_, -]+)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One invariant violation at a specific source line."""

    path: str
    line: int
    rule: str
    message: str

    def text(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def load_rules() -> Dict[str, object]:
    """Rule name -> ``run`` callable, in registry order."""
    rules: Dict[str, object] = {}
    for module_name in RULE_MODULES:
        module = importlib.import_module(module_name)
        rules[module.RULE_NAME] = module.run
    return rules


def collect_files(
    root: Path,
) -> Tuple[Dict[str, SourceFile], List[Finding]]:
    """Parse every python file under ``root/src/repro``."""
    base = root / "src" / "repro"
    files: Dict[str, SourceFile] = {}
    findings: List[Finding] = []
    for path in sorted(base.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        text = path.read_text()
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            findings.append(
                Finding(rel, exc.lineno or 1, "parse", f"cannot parse: {exc.msg}")
            )
            continue
        files[rel] = SourceFile(
            path=path, rel=rel, tree=tree, lines=text.splitlines()
        )
    return files, findings


def _suppression_map(
    files: Dict[str, SourceFile],
) -> Dict[Tuple[str, int], set]:
    suppressions: Dict[Tuple[str, int], set] = {}
    for src in files.values():
        for lineno, line in enumerate(src.lines, start=1):
            match = _SUPPRESS.search(line)
            if match:
                names = {
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                if names:
                    suppressions[(src.rel, lineno)] = names
    return suppressions


def run(
    root: Path, only: Optional[Sequence[str]] = None
) -> Tuple[List[Finding], int]:
    """Lint the tree at ``root``; returns (findings, files scanned).

    ``only`` restricts to a subset of rule names; unused-suppression
    detection is skipped then, since a comment may exist for a rule
    that was not run.
    """
    files, findings = collect_files(root)
    rules = load_rules()
    if only is not None:
        unknown = sorted(set(only) - set(rules))
        if unknown:
            raise SystemExit(
                f"repro-lint: unknown rule(s) {', '.join(unknown)} "
                f"(have: {', '.join(rules)})"
            )
        rules = {name: fn for name, fn in rules.items() if name in only}

    for name, fn in rules.items():
        for rel, line, message in fn(files):
            findings.append(Finding(rel, line, name, message))

    suppressions = _suppression_map(files)
    used: set = set()
    kept: List[Finding] = []
    for finding in findings:
        key = (finding.path, finding.line)
        names = suppressions.get(key)
        if names is not None and finding.rule in names:
            used.add(key)
            continue
        kept.append(finding)
    if only is None:
        for key in sorted(set(suppressions) - used):
            names = ",".join(sorted(suppressions[key]))
            kept.append(
                Finding(
                    key[0],
                    key[1],
                    "unused-suppression",
                    f"suppression silences nothing — remove "
                    f"`# repro-lint: disable={names}`",
                )
            )
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return kept, len(files)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checks for src/repro "
        "(determinism, lock discipline, RPC surface, wire capabilities).",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="repository root to lint (default: this repo)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable findings report on stdout",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="RULE",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print registered rule names and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in load_rules():
            print(name)
        return 0

    findings, n_files = run(args.root, only=args.only)

    if args.json:
        report = {
            "root": str(args.root),
            "files": n_files,
            "rules": list(load_rules()) if args.only is None else args.only,
            "clean": not findings,
            "findings": [dataclasses.asdict(f) for f in findings],
        }
        print(json.dumps(report, indent=2))
        return 1 if findings else 0

    if findings:
        for finding in findings:
            print(f"repro-lint: {finding.text()}", file=sys.stderr)
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(
        f"repro-lint: {n_files} files clean under src/repro "
        f"(rules: {', '.join(load_rules())})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
