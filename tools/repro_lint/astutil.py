"""Shared AST helpers for the repro-lint rule passes.

Rule modules (``rule_*.py``) depend only on this module and the
standard library, never on the engine — the engine imports *them*, so
the dependency graph stays a straight line (astutil <- rules <-
engine) and each rule is importable on its own in tests.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple


@dataclasses.dataclass
class SourceFile:
    """One parsed source file, as handed to every rule pass."""

    path: Path        # absolute location on disk
    rel: str          # posix path relative to the scan root (src/repro/...)
    tree: ast.Module
    lines: List[str]  # raw source lines (index 0 = line 1)

    @property
    def repro_rel(self) -> str:
        """Path relative to the ``src/repro`` package root."""
        prefix = "src/repro/"
        if self.rel.startswith(prefix):
            return self.rel[len(prefix):]
        return self.rel


def find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    """The module-level class named ``name``, or ``None``."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def method_defs(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Methods (and properties) defined directly on ``cls``, by name."""
    out: Dict[str, ast.FunctionDef] = {}
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[node.name] = node
    return out


def public_surface(cls: ast.ClassDef) -> Set[str]:
    """Non-underscore method/property names defined directly on ``cls``."""
    return {name for name in method_defs(cls) if not name.startswith("_")}


def self_attr_root(node: ast.AST) -> Optional[str]:
    """``self.X``, ``self.X[...]``, ``self.X[...].Y`` ... -> ``"X"``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


def str_const(node: ast.AST) -> Optional[str]:
    """The value of a string-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def string_method_calls(
    scope: ast.AST, attr: str
) -> Iterator[Tuple[str, int]]:
    """Yield ``(name, lineno)`` for every ``<expr>.{attr}("name", ...)``.

    Only calls whose first positional argument is a string literal are
    yielded — variable method names are resolution sites, not dispatch
    declarations, and carry nothing to check statically.
    """
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == attr):
            continue
        if not node.args:
            continue
        name = str_const(node.args[0])
        if name is not None:
            yield name, node.lineno


#: ``self.<attr>.<method>(...)`` calls that mutate the attribute.
MUTATING_CALLS = {
    "append", "extend", "add", "update", "pop", "popitem", "clear",
    "remove", "discard", "insert", "setdefault", "appendleft", "popleft",
    "intern", "intern_many",
}


def _flatten_targets(targets: List[ast.AST]) -> Iterator[ast.AST]:
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flatten_targets(list(target.elts))
        elif isinstance(target, ast.Starred):
            yield target.value
        else:
            yield target


def mutating_methods(cls: ast.ClassDef, cache_attrs: Set[str]) -> Set[str]:
    """Method names of ``cls`` that mutate instance state.

    A method mutates if it assigns/augments/deletes ``self.<attr>`` (or
    a subscript of one), or calls a :data:`MUTATING_CALLS` method on a
    ``self.<attr>`` object — except when the attribute is in
    ``cache_attrs`` (memoization caches and lazily created executors
    are write-backed reads, not logical mutations).  Mutation propagates
    through same-class ``self.helper()`` calls to a fixed point, so a
    thin public wrapper around a mutating helper is itself a mutator.
    ``__init__`` is constructor territory and exempt.
    """
    direct: Set[str] = set()
    calls: Dict[str, Set[str]] = {}
    for name, fn in method_defs(cls).items():
        if name == "__init__":
            continue
        called: Set[str] = set()
        hit = False
        for node in ast.walk(fn):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for target in _flatten_targets(targets):
                root = self_attr_root(target)
                if root is not None and root not in cache_attrs:
                    hit = True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                if isinstance(func.value, ast.Name) and func.value.id == "self":
                    called.add(func.attr)
                elif func.attr in MUTATING_CALLS:
                    root = self_attr_root(func.value)
                    if root is not None and root not in cache_attrs:
                        hit = True
        if hit:
            direct.add(name)
        calls[name] = called

    mutators = set(direct)
    changed = True
    while changed:
        changed = False
        for name, called in calls.items():
            if name not in mutators and called & mutators:
                mutators.add(name)
                changed = True
    return mutators
