"""Entry point: ``python tools/repro_lint [--json] [--only RULE]``."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import engine  # noqa: E402

sys.exit(engine.main())
