"""Fail when README/docs drift from the actual CLI.

Two-way check between ``README.md`` and ``repro.cli.build_parser()``:

1. every ``--flag`` used in a README fenced code block's
   ``python -m repro <command>`` invocation must exist on that
   command's parser (catches docs referencing removed/renamed flags);
2. every flag the ``simulate`` command defines must be mentioned
   somewhere in README.md (catches new flags landing undocumented).

Also verifies that relative markdown links in README.md point at files
that exist (e.g. ``docs/ARCHITECTURE.md``).

Run via ``make docs-check`` or directly:
``PYTHONPATH=src python tools/docs_check.py``.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"

_FENCE = re.compile(r"```(?:bash|sh|console)?\n(.*?)```", re.DOTALL)
_FLAG = re.compile(r"(--[a-z][a-z0-9-]*)")
_LINK = re.compile(r"\[[^\]]+\]\(([^)#]+)\)")


def cli_options() -> dict:
    """command name -> set of option strings, from the real parser."""
    from repro.cli import build_parser

    parser = build_parser()
    commands = {}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, subparser in action.choices.items():
                flags = set()
                for sub_action in subparser._actions:
                    flags.update(sub_action.option_strings)
                commands[name] = flags
    return commands


def readme_invocations(text: str):
    """Yield (command, [flags]) for each ``python -m repro`` call."""
    for block in _FENCE.findall(text):
        # Join backslash line continuations into one logical command.
        logical = block.replace("\\\n", " ")
        for line in logical.splitlines():
            line = line.strip()
            if "-m repro" not in line:
                continue
            tail = line.split("-m repro", 1)[1].split()
            if not tail or tail[0].startswith("-"):
                continue
            yield tail[0], _FLAG.findall(line)


def check(readme_path: Path = README) -> list:
    errors = []
    if not readme_path.exists():
        return [f"{readme_path} does not exist"]
    text = readme_path.read_text()
    commands = cli_options()

    seen_simulate_flags = set()
    for command, flags in readme_invocations(text):
        if command not in commands:
            errors.append(f"README documents unknown command {command!r}")
            continue
        for flag in flags:
            if flag not in commands[command]:
                errors.append(
                    f"README uses {flag} with {command!r}, but the CLI "
                    f"does not define it"
                )
            elif command == "simulate":
                seen_simulate_flags.add(flag)

    for flag in sorted(commands.get("simulate", ())):
        if flag in ("-h", "--help"):
            continue
        if flag not in text:
            errors.append(
                f"simulate flag {flag} is not mentioned anywhere in README.md"
            )

    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not (readme_path.parent / target).exists():
            errors.append(f"README links to missing file {target!r}")

    return errors


def main() -> int:
    errors = check()
    if errors:
        for error in errors:
            print(f"docs-check: {error}", file=sys.stderr)
        print(f"docs-check: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("docs-check: README.md matches the CLI")
    return 0


if __name__ == "__main__":
    sys.exit(main())
