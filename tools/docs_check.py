"""Fail when README/docs drift from the actual CLI.

Checks both drift directions between the markdown surface (README.md
and every ``docs/*.md`` file) and ``repro.cli.build_parser()``:

1. every ``--flag`` used in a fenced code block's
   ``python -m repro <command>`` invocation must exist on that
   command's parser (catches docs invoking removed/renamed flags);
2. every ``--flag`` *mentioned* in inline code (single-backtick spans)
   anywhere in README/docs must exist on at least one CLI command —
   prose references rot just as fast as code blocks.  Flags of
   non-CLI tools (e.g. the benchmark script's ``--smoke``) go in
   ``NON_CLI_FLAGS``;
3. every flag the ``simulate`` command defines must be mentioned
   somewhere in README.md (catches new flags landing undocumented);
4. every CLI subcommand must be mentioned somewhere across the
   checked files (a new subcommand cannot land undocumented);
5. per-file coverage contracts (``REQUIRED_COVERAGE``): a file that
   owns a feature's documentation must mention that feature's
   commands and flags — ``docs/DISTRIBUTED.md`` must cover the
   ``shard-server`` command, *every* flag it defines (derived from
   the live parser, so adding a server flag without documenting it
   fails), and the distributed ``simulate`` flags;
6. ``docs/LINTING.md`` must document every registered ``repro_lint``
   rule (names come from the live rule registry, so a new lint pass
   cannot land undocumented — same idiom as deriving flags from the
   live parser).

Also verifies that relative markdown links in each checked file point
at files that exist (e.g. ``docs/ARCHITECTURE.md``).

Run via ``make docs-check`` (part of ``make test``, also wrapped by
``tools/run_checks.py``) or directly:
``PYTHONPATH=src python tools/docs_check.py``.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
DOCS_DIR = REPO_ROOT / "docs"

#: Flags that legitimately appear in the docs but belong to tools other
#: than the ``python -m repro`` CLI (benchmark script modes, pip, …).
NON_CLI_FLAGS = {
    "--smoke",
    "--backends",
    "--tcp",
    "--no-use-pep517",
    "--no-build-isolation",
    # tools/repro_lint flags (documented in docs/LINTING.md)
    "--json",
    "--only",
    "--list-rules",
}

#: Per-file documentation contracts (direction 5): file name ->
#: (commands whose surface the file owns, extra simulate flags it must
#: mention).  Flags of an owned command are derived from the live
#: parser so the contract tracks the CLI automatically.
REQUIRED_COVERAGE = {
    "DISTRIBUTED.md": {
        "commands": ("shard-server", "query"),
        "flags": (
            "--shard-backend",
            "--shard-addrs",
            "--connect-timeout",
            "--pipeline-depth",
            "--io-timeout",
            "--replica-addrs",
            "--inject-fault",
            "--query-listen",
        ),
    },
    "ARCHITECTURE.md": {
        "commands": (),
        "flags": (
            "--stream",
            "--max-windows",
            "--retain-windows",
            "--alarm-pool",
            "--inject-regression",
        ),
    },
    "TELEMETRY.md": {
        "commands": (),
        "flags": (
            "--stream",
            "--retain-windows",
        ),
    },
}

_FENCE = re.compile(r"```(?:bash|sh|console|text)?\n(.*?)```", re.DOTALL)
_ANY_FENCE = re.compile(r"```.*?```", re.DOTALL)
_FLAG = re.compile(r"(--[a-z][a-z0-9-]*)")
_LINK = re.compile(r"\[[^\]]+\]\(([^)#]+)\)")
_INLINE_CODE = re.compile(r"`([^`\n]+)`")


def checked_files() -> List[Path]:
    """README plus every markdown file under docs/."""
    files = [README]
    if DOCS_DIR.is_dir():
        files.extend(sorted(DOCS_DIR.glob("*.md")))
    return [f for f in files if f.exists()]


def cli_options() -> dict:
    """command name -> set of option strings, from the real parser."""
    from repro.cli import build_parser

    parser = build_parser()
    commands = {}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, subparser in action.choices.items():
                flags = set()
                for sub_action in subparser._actions:
                    flags.update(sub_action.option_strings)
                commands[name] = flags
    return commands


def invocations(text: str) -> Iterable[Tuple[str, List[str]]]:
    """Yield (command, [flags]) for each fenced ``python -m repro`` call."""
    for block in _FENCE.findall(text):
        # Join backslash line continuations into one logical command.
        logical = block.replace("\\\n", " ")
        for line in logical.splitlines():
            line = line.strip()
            if "-m repro" not in line:
                continue
            tail = line.split("-m repro", 1)[1].split()
            if not tail or tail[0].startswith("-"):
                continue
            yield tail[0], _FLAG.findall(line)


def mentioned_flags(text: str) -> Iterable[str]:
    """Every ``--flag`` inside an inline code span, fences stripped.

    *All* fenced blocks are stripped first, whatever their language
    tag — invocation checking inside fences is :func:`invocations`'
    job, and e.g. a python fence must not have its contents re-parsed
    as prose spans.
    """
    prose = _ANY_FENCE.sub("", text)
    for span in _INLINE_CODE.findall(prose):
        yield from _FLAG.findall(span)


def check_file(path: Path, commands: dict, errors: List[str]) -> None:
    """Append this file's drift problems (directions 1 and 2) to ``errors``."""
    try:
        rel = path.relative_to(REPO_ROOT)
    except ValueError:  # test fixtures live outside the repo
        rel = path
    text = path.read_text()
    all_flags = set().union(*commands.values()) if commands else set()

    for command, flags in invocations(text):
        if command not in commands:
            errors.append(f"{rel} documents unknown command {command!r}")
            continue
        for flag in flags:
            if flag not in commands[command]:
                errors.append(
                    f"{rel} uses {flag} with {command!r}, but the CLI "
                    f"does not define it"
                )

    for flag in sorted(set(mentioned_flags(text))):
        if flag in NON_CLI_FLAGS:
            continue
        if flag not in all_flags:
            errors.append(
                f"{rel} mentions {flag}, but no CLI command defines it "
                f"(add it to NON_CLI_FLAGS if it belongs to another tool)"
            )

    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not (path.parent / target).exists():
            errors.append(f"{rel} links to missing file {target!r}")

    coverage = REQUIRED_COVERAGE.get(path.name)
    if coverage is not None:
        required_flags = set(coverage["flags"])
        for command in coverage["commands"]:
            if command not in text:
                errors.append(
                    f"{rel} owns the {command!r} documentation but never "
                    f"mentions the command"
                )
            required_flags.update(commands.get(command, ()))
        for flag in sorted(required_flags):
            if flag in ("-h", "--help"):
                continue
            if flag not in text:
                errors.append(
                    f"{rel} owns this feature's documentation but does "
                    f"not mention {flag}"
                )


def check(readme_path: Path = README, doc_paths: Optional[List[Path]] = None) -> list:
    """Run every drift check; returns the list of problems found.

    ``readme_path`` / ``doc_paths`` exist for tests; by default the
    repo README and every ``docs/*.md`` file are checked (passing a
    non-default README checks only that file).
    """
    errors: List[str] = []
    if not readme_path.exists():
        return [f"{readme_path} does not exist"]
    if doc_paths is None:
        doc_paths = checked_files() if readme_path == README else [readme_path]
    commands = cli_options()

    for path in doc_paths:
        check_file(path, commands, errors)

    # Direction 3: undocumented simulate flags (README is the contract).
    readme_text = readme_path.read_text()
    for flag in sorted(commands.get("simulate", ())):
        if flag in ("-h", "--help"):
            continue
        if flag not in readme_text:
            errors.append(
                f"simulate flag {flag} is not mentioned anywhere in README.md"
            )

    # Direction 4: undocumented subcommands.  Only meaningful over the
    # real documentation surface — a test fixture README legitimately
    # covers a single feature, the repo's docs must cover every command.
    if readme_path == README:
        all_text = "".join(path.read_text() for path in doc_paths)
        errors.extend(undocumented_commands(commands, all_text))
        # Direction 6: every lint pass must be documented.
        errors.extend(undocumented_lint_rules())

    return errors


def lint_rule_names() -> List[str]:
    """Registered repro_lint rule names, from the live registry."""
    import importlib.util

    path = REPO_ROOT / "tools" / "repro_lint" / "engine.py"
    spec = importlib.util.spec_from_file_location("_repro_lint_engine", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["_repro_lint_engine"] = module
    spec.loader.exec_module(module)
    return list(module.load_rules()) + ["unused-suppression"]


def undocumented_lint_rules() -> List[str]:
    """Direction 6: lint rules docs/LINTING.md never mentions."""
    linting = DOCS_DIR / "LINTING.md"
    if not linting.exists():
        return [
            "docs/LINTING.md is missing — it owns the `make lint` "
            "invariant documentation"
        ]
    text = linting.read_text()
    return [
        f"docs/LINTING.md does not document lint rule {rule!r}"
        for rule in lint_rule_names()
        if rule not in text
    ]


def undocumented_commands(commands: dict, all_text: str) -> List[str]:
    """Direction 4: CLI commands the documentation never mentions."""
    return [
        f"CLI command {command!r} is not mentioned in README.md "
        f"or any docs/*.md file"
        for command in sorted(commands)
        if not re.search(rf"\b{re.escape(command)}\b", all_text)
    ]


def main() -> int:
    errors = check()
    if errors:
        for error in errors:
            print(f"docs-check: {error}", file=sys.stderr)
        print(f"docs-check: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    names = ", ".join(str(p.relative_to(REPO_ROOT)) for p in checked_files())
    print(f"docs-check: {names} match the CLI")
    return 0


if __name__ == "__main__":
    sys.exit(main())
